package metarepair_test

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/metarepair"
)

// TestStreamingPipelineEvents: the streaming composition must emit the
// new per-candidate and overlap events alongside the classic envelope.
func TestStreamingPipelineEvents(t *testing.T) {
	var events []metarepair.Event
	sess, wl := runDiagnostic(t)
	report, err := sess.Repair(context.Background(), miniSymptom(), miniBacktest(wl),
		metarepair.WithBatchSize(2),
		metarepair.WithEventSink(metarepair.SinkFunc(func(e metarepair.Event) {
			events = append(events, e)
		})))
	if err != nil {
		t.Fatal(err)
	}
	kinds := make(map[string]int)
	for _, e := range events {
		kinds[e.Kind]++
	}
	if kinds["explore.candidate"] != len(report.Candidates) {
		t.Fatalf("explore.candidate events = %d, candidates = %d",
			kinds["explore.candidate"], len(report.Candidates))
	}
	for _, want := range []string{"explore.start", "explore.done", "backtest.start", "batch.done", "suggestion", "report"} {
		if kinds[want] == 0 {
			t.Errorf("no %q event; got %v", want, kinds)
		}
	}
	if report.EarlyStopped {
		t.Fatal("streaming mode must not early-stop without PipelineFirstAccepted")
	}
	if report.Evaluated != len(report.Candidates) {
		t.Fatalf("evaluated %d of %d without early stop", report.Evaluated, len(report.Candidates))
	}
}

// TestFirstAcceptedStopsPipeline: PipelineFirstAccepted must cancel the
// search and the unstarted batches once a repair passes — and tear every
// goroutine down (run under -race in CI).
func TestFirstAcceptedStopsPipeline(t *testing.T) {
	before := runtime.NumGoroutine()

	sess, wl := runDiagnostic(t, metarepair.WithMaxCandidates(24))
	var events []metarepair.Event
	run, err := sess.Stream(context.Background(), miniSymptom(), miniBacktest(wl),
		metarepair.WithPipelineMode(metarepair.PipelineFirstAccepted),
		metarepair.WithBatchSize(1), metarepair.WithParallelism(1),
		metarepair.WithEventSink(metarepair.SinkFunc(func(e metarepair.Event) {
			events = append(events, e)
		})))
	if err != nil {
		t.Fatal(err)
	}
	var streamed []metarepair.Suggestion
	for s := range run.Suggestions() {
		streamed = append(streamed, s)
	}
	report, err := run.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !report.EarlyStopped {
		t.Fatal("pipeline did not stop at the first accepted repair")
	}
	if report.Accepted == 0 {
		t.Fatal("early stop without an accepted suggestion")
	}
	if !report.Suggestions[0].Result.Accepted {
		t.Fatalf("top suggestion not accepted: %v", report.Suggestions[0])
	}
	if report.Evaluated != len(streamed) {
		t.Fatalf("report evaluated %d, streamed %d", report.Evaluated, len(streamed))
	}
	if report.Evaluated >= len(report.Candidates) && len(report.Candidates) >= 24 {
		t.Fatalf("early stop evaluated all %d candidates", report.Evaluated)
	}
	if !strings.Contains(report.Render(), "stopped at first accepted repair") {
		t.Fatal("Render must surface the early stop")
	}
	sawStop := false
	for _, e := range events {
		if e.Kind == "pipeline.stop" {
			sawStop = true
		}
	}
	if !sawStop {
		t.Fatal("no pipeline.stop event")
	}

	// No goroutine leaks: search workers, batch workers, and the feeder
	// must all exit after the early stop.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, now)
	}
}

// TestExploreWorkersOptionEquivalence: any explore worker count produces
// the same report through the public session API.
func TestExploreWorkersOptionEquivalence(t *testing.T) {
	runWith := func(workers int) *metarepair.Report {
		t.Helper()
		sess, wl := runDiagnostic(t)
		rep, err := sess.Repair(context.Background(), miniSymptom(), miniBacktest(wl),
			metarepair.WithExploreWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	one := runWith(1)
	four := runWith(4)
	if len(one.Results) != len(four.Results) {
		t.Fatalf("results differ: %d vs %d", len(one.Results), len(four.Results))
	}
	for i := range one.Results {
		a, b := one.Results[i], four.Results[i]
		if a.Candidate.Signature() != b.Candidate.Signature() || a.Accepted != b.Accepted {
			t.Fatalf("candidate %d differs: %s (accepted %v) vs %s (accepted %v)",
				i, a.Candidate.Describe(), a.Accepted, b.Candidate.Describe(), b.Accepted)
		}
	}
}
