package metarepair

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/backtest"
	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/provenance"
)

// Timing is the Figure 9a turnaround breakdown.
type Timing struct {
	HistoryLookups    time.Duration
	ConstraintSolving time.Duration
	PatchGeneration   time.Duration
	Replay            time.Duration
	// Overlap is how long exploration and backtest replay ran
	// concurrently under the streaming pipeline (zero under the barrier
	// composition). It is informational — the overlapped time is already
	// inside the other components, so Total does not add it; wall-clock
	// turnaround is roughly Total() minus Overlap.
	Overlap time.Duration
}

// Total sums the phase components (Overlap excluded; it measures their
// concurrency, not extra work).
func (t Timing) Total() time.Duration {
	return t.HistoryLookups + t.ConstraintSolving + t.PatchGeneration + t.Replay
}

// Suggestion is one ranked repair.
type Suggestion struct {
	// Rank is the §5.3 presentation position (1-based); on streamed
	// suggestions it is the candidate's cost-order position until the
	// final Report re-ranks accepted-first.
	Rank int
	// Index is the candidate's position in the cost-ordered candidate
	// list; Batch is the shared-run batch that evaluated it.
	Index int
	Batch int
	// Candidate is the repair; Result its backtesting verdict.
	Candidate metaprov.Candidate
	Result    backtest.Result
}

// String renders the suggestion as the debugger presents it.
func (s Suggestion) String() string {
	mark := "rejected"
	if s.Result.Accepted {
		mark = "accepted"
	}
	return fmt.Sprintf("#%d [%s, cost %.1f, KS %.5f] %s",
		s.Rank, mark, s.Candidate.Cost, s.Result.KS, s.Candidate.Describe())
}

// Report is the outcome of one repair pipeline run.
type Report struct {
	// Explanation is the provenance tree for the symptom (positive
	// provenance for Present symptoms; the candidate meta-provenance
	// trees cover missing symptoms).
	Explanation *provenance.Vertex
	// Suggestions are all backtested candidates, accepted first, then by
	// complexity (cost) — the §5.3 presentation order.
	Suggestions []Suggestion
	// Results are the same verdicts in candidate (cost) order — the
	// Table 2 / Table 6 row order.
	Results []backtest.Result
	// Candidates are the evaluated repairs in cost order.
	Candidates []metaprov.Candidate
	// Accepted counts suggestions that passed backtesting.
	Accepted int
	// Generated counts candidates produced by exploration, before any
	// filter or cap.
	Generated int
	// Filtered counts candidates removed by WithCandidateFilter.
	Filtered int
	// Dropped counts candidates discarded by the WithMaxCandidates cap —
	// always reported, never silent.
	Dropped int
	// Batches is how many shared runs evaluated the candidate set; Steps
	// counts explorer vertex expansions.
	Batches int
	Steps   int
	// EarlyStopped reports that PipelineFirstAccepted cut the run short:
	// the search and the unstarted batches were cancelled once a repair
	// passed. Evaluated counts candidates that actually have verdicts;
	// under early stop it can be smaller than len(Candidates), and the
	// unevaluated Results entries carry a zero verdict — IsEvaluated
	// distinguishes them.
	EarlyStopped bool
	Evaluated    int
	evaluated    []bool
	// Engine aggregates the NDlog engine counters across every shared
	// backtest run of this report — in particular the delta-evaluation
	// families (DeltaInserts, DeltaRetractions, RecountedTuples) that the
	// overhead report and the ndlog_delta_* metrics surface. Sequential
	// (per-candidate) runs do not contribute.
	Engine ndlog.EngineStats
	// Timing is the Figure 9a turnaround breakdown (exploration plus
	// backtest replay; the caller's diagnostic replay is not included).
	Timing Timing
	// Spans are the run's hierarchical wall-clock spans (run ⊃ explore /
	// backtest ⊃ batch / verdict) in completion order — the raw material
	// the Timing breakdown and the session_span metrics are derived from.
	Spans []Span
}

// IsEvaluated reports whether candidate i was actually backtested. Only a
// PipelineFirstAccepted early stop leaves candidates unevaluated.
func (r *Report) IsEvaluated(i int) bool {
	if r.evaluated == nil {
		return i >= 0 && i < len(r.Results)
	}
	return i >= 0 && i < len(r.evaluated) && r.evaluated[i]
}

// Render pretty-prints a report.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d suggestion(s), %d accepted", len(r.Suggestions), r.Accepted)
	if r.Dropped > 0 {
		fmt.Fprintf(&b, " (%d dropped by candidate budget)", r.Dropped)
	}
	if r.Filtered > 0 {
		fmt.Fprintf(&b, " (%d filtered)", r.Filtered)
	}
	if r.EarlyStopped {
		fmt.Fprintf(&b, " (stopped at first accepted repair, %d of %d evaluated)",
			r.Evaluated, len(r.Candidates))
	}
	b.WriteByte('\n')
	for _, s := range r.Suggestions {
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// rank sorts suggestions accepted-first then by cost — "the simplest
// candidate is shown first" (§5.3) — and renumbers them.
func (r *Report) rank() {
	sort.SliceStable(r.Suggestions, func(i, j int) bool {
		si, sj := r.Suggestions[i], r.Suggestions[j]
		if si.Result.Accepted != sj.Result.Accepted {
			return si.Result.Accepted
		}
		return si.Candidate.Cost < sj.Candidate.Cost
	})
	r.Accepted = 0
	for i := range r.Suggestions {
		r.Suggestions[i].Rank = i + 1
		if r.Suggestions[i].Result.Accepted {
			r.Accepted++
		}
	}
}

// Run is a streaming repair evaluation in flight. Suggestions arrive on
// Suggestions() as each shared-run batch completes; Wait blocks until the
// pipeline finishes and returns the final ranked Report.
type Run struct {
	ch     chan Suggestion
	done   chan struct{}
	report *Report
	err    error
}

// newRun returns an in-flight evaluation handle whose suggestion channel
// is buffered for capacity verdicts. Every producer sizes the buffer for
// the largest set it can evaluate, so pushes never block, workers are
// never stalled by a slow consumer, and an abandoned Run leaks nothing —
// no goroutine stands behind the channel.
func newRun(capacity int) *Run {
	return &Run{
		ch:   make(chan Suggestion, capacity),
		done: make(chan struct{}),
	}
}

// push delivers one verdict to the suggestion stream.
func (r *Run) push(s Suggestion) { r.ch <- s }

// finish closes the suggestion stream.
func (r *Run) finish() { close(r.ch) }

// Suggestions returns the stream of per-candidate verdicts. The channel
// is buffered for the full candidate set (a slow consumer never stalls
// the workers) and closed once every batch has completed.
func (r *Run) Suggestions() <-chan Suggestion { return r.ch }

// Wait blocks until the evaluation finishes and returns the final report
// with the §5.3 accepted-then-cost ordering. It does not consume the
// suggestion stream; callers may read both.
func (r *Run) Wait() (*Report, error) {
	<-r.done
	if r.err != nil {
		return nil, r.err
	}
	return r.report, nil
}
