// Package metarepair is the public surface of the meta-provenance
// debugger: it ties the NDlog engine, provenance recorder, meta-provenance
// explorer, repair generator, and backtesting engine into the staged
// pipeline the paper describes (§2, §4.3–§4.4): the operator specifies an
// observed problem, the debugger explores meta provenance for repair
// candidates, backtests them against historical traffic, and returns a
// ranked list of suggested repairs that fix the problem with few side
// effects.
//
// The pipeline is context-aware (every long-running call takes a
// context.Context), configured by functional options instead of mutable
// struct fields, and streams incremental results: candidate sets larger
// than one shared run's 63-tag space are split into batches backtested
// concurrently on a worker pool, with per-suggestion verdicts delivered on
// a channel as each batch completes.
//
// Typical use:
//
//	sess, _ := metarepair.NewSession(program)
//	net := buildNetwork()
//	net.Ctrl = sess.Controller()     // record control-plane history
//	...run traffic...
//	sym := metarepair.Missing("FlowTable", metarepair.Pin(3), nil, nil, nil, metarepair.Pin(80), metarepair.Pin(2))
//	report, _ := sess.Repair(ctx, sym, metarepair.Backtest{BuildNet: buildNetwork, Workload: wl, Effective: fixed})
//	for _, s := range report.Suggestions { fmt.Println(s) }
//
// For incremental consumption use Stream, which returns a Run whose
// Suggestions channel yields verdicts as batches finish.
package metarepair

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/backtest"
	"repro/internal/meta"
	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/sdn"
	"repro/internal/trace"
	"repro/internal/tracestore"
)

// Session wires a controller program to the provenance and repair
// machinery. A session is created once per program; its controller is
// attached to the live network so control-plane history is recorded, and
// its pipeline methods answer diagnostic queries over that history.
type Session struct {
	prog   *ndlog.Program
	engine *ndlog.Engine
	rec    *provenance.Recorder
	ctl    *sdn.NDlogController
	opts   options
}

// NewSession compiles the program, attaches a provenance recorder, and
// applies the session-default options. Invalid options (negative or zero
// worker and batch counts) are rejected here rather than silently
// corrected — see ValidateOptions.
func NewSession(prog *ndlog.Program, opts ...Option) (*Session, error) {
	o := defaultOptions().with(opts)
	if o.err != nil {
		return nil, o.err
	}
	eng, err := ndlog.NewEngine(prog)
	if err != nil {
		return nil, err
	}
	rec := provenance.NewRecorder()
	eng.Listen(rec)
	return &Session{
		prog:   prog,
		engine: eng,
		rec:    rec,
		ctl:    sdn.NewNDlogController(eng),
		opts:   o,
	}, nil
}

// EngineStats snapshots the session engine's work counters (rule
// firings, derivations, index lookups, scans) accumulated by everything
// the session's controller has processed. Callers poll it to export
// ndlog_* gauges alongside the pipeline's own metrics.
func (s *Session) EngineStats() ndlog.EngineStats { return s.engine.Stats }

// Program returns the controller program under diagnosis.
func (s *Session) Program() *ndlog.Program { return s.prog }

// Controller returns the SDN controller backed by the session's engine;
// attach it to a Network so control-plane history is recorded.
func (s *Session) Controller() *sdn.NDlogController { return s.ctl }

// Recorder exposes the provenance recorder (historical tuples,
// derivations).
func (s *Session) Recorder() *provenance.Recorder { return s.rec }

// Explain returns the classic provenance explanation for a tuple (§2.2).
func (s *Session) Explain(t ndlog.Tuple) *provenance.Vertex {
	return s.rec.Explain(t)
}

// ExplainMissing returns the negative provenance explanation (§2.2).
func (s *Session) ExplainMissing(table string, filter []*ndlog.Value) *provenance.Vertex {
	return s.rec.ExplainMissing(s.prog, table, filter)
}

// Symptom describes the observed problem: either a missing tuple (Goal)
// or an unwanted existing tuple (Present).
type Symptom struct {
	Goal    metaprov.Goal
	Present *ndlog.Tuple
}

// String names the symptom for event logs.
func (sym Symptom) String() string {
	if sym.Present != nil {
		return "present " + sym.Present.String()
	}
	if sym.Goal.Table != "" {
		return "missing " + sym.Goal.String()
	}
	return "empty"
}

// Missing builds a missing-tuple symptom; nil entries are unconstrained.
func Missing(table string, args ...*ndlog.Value) Symptom {
	return Symptom{Goal: metaprov.PinnedGoal(table, args...)}
}

// Present builds an unwanted-tuple symptom.
func Present(t ndlog.Tuple) Symptom { return Symptom{Present: &t} }

// Pin is a helper to build pinned symptom arguments.
func Pin(v int64) *ndlog.Value {
	x := ndlog.Int(v)
	return &x
}

// Backtest describes the historical evidence a candidate set is evaluated
// against (§4.3): how to rebuild the network, the controller state and
// recorded workload to replay, and the per-tag effectiveness check.
type Backtest struct {
	// BuildNet constructs a fresh network (topology + proactive state, no
	// controller attached). It must be safe to call concurrently: the
	// parallel strategy builds one network per in-flight batch.
	BuildNet func() *sdn.Network
	// State are controller tuples inserted before traffic (policy tables).
	State []ndlog.Tuple
	// Workload is the recorded packet trace to replay, as an in-memory
	// slice (the compatibility path).
	Workload []trace.Entry
	// Source streams the recorded workload instead; replay memory is
	// then independent of trace length. Precedence: Source, then the
	// session's WithTraceStore store, then Workload.
	Source trace.Source
	// Effective decides whether the symptom is fixed for a tag in the
	// replayed network.
	Effective func(net *sdn.Network, ctl *sdn.NDlogController, tag int) bool
}

// Exploration is the outcome of the candidate-generation stage.
type Exploration struct {
	Symptom     Symptom
	Explanation *provenance.Vertex
	// Candidates are the repairs carried into backtesting, in cost order.
	Candidates []metaprov.Candidate
	// Generated counts candidates before any filter or cap; Filtered and
	// Dropped account for every candidate not in Candidates.
	Generated int
	Filtered  int
	Dropped   int
	// Steps counts vertex expansions (the Figure 9 evaluation metric).
	Steps int

	historyTime time.Duration
	solveTime   time.Duration
	genTime     time.Duration
}

// timedHistory wraps the recorder to attribute history-lookup time (the
// Figure 9a breakdown). The counter is atomic: under the streaming
// pipeline every explore worker queries history concurrently.
type timedHistory struct {
	rec         *provenance.Recorder
	elapsedNano atomic.Int64
}

func (h *timedHistory) TuplesOf(table string) []ndlog.Tuple {
	start := time.Now()
	out := h.rec.TuplesOf(table)
	h.elapsedNano.Add(int64(time.Since(start)))
	return out
}

func (h *timedHistory) total() time.Duration {
	return time.Duration(h.elapsedNano.Load())
}

// Explore runs the meta-provenance search for the symptom and returns the
// cost-ordered candidate set (§3.5) without backtesting it — the first
// pipeline stage, separated so experiments can measure or ablate it.
func (s *Session) Explore(ctx context.Context, sym Symptom, extra ...Option) (*Exploration, error) {
	o := s.opts.with(extra)
	if o.err != nil {
		return nil, o.err
	}
	return s.explore(ctx, sym, o, newTracer(o))
}

func (s *Session) explore(ctx context.Context, sym Symptom, o options, tr *tracer) (*Exploration, error) {
	th := &timedHistory{rec: s.rec}
	ex := metaprov.NewExplorer(meta.NewModel(s.prog), th)
	o.budget.apply(ex)

	o.emit(Event{Kind: "explore.start", Symptom: sym.String()})
	endSpan := tr.start(SpanExplore, SpanRun)
	start := time.Now()
	expl := &Exploration{Symptom: sym}
	var cands []metaprov.Candidate
	var err error
	switch {
	case sym.Present != nil:
		expl.Explanation = s.rec.Explain(*sym.Present)
		cands, err = ex.RepairPositiveContext(ctx, *sym.Present, s.rec)
	case sym.Goal.Table != "":
		expl.Explanation = s.rec.ExplainMissing(s.prog, sym.Goal.Table, nil)
		// The candidate cap bounds the forest search itself here: the
		// search is cost-ordered, so stopping at N keeps the N cheapest.
		ex.MaxCandidates = o.maxCandidates
		cands, err = ex.ExploreContext(ctx, sym.Goal)
	default:
		return nil, errors.New("metarepair: empty symptom")
	}
	if err != nil {
		return nil, err
	}
	expl.Generated = len(cands)
	expl.Candidates = o.filterAndCap(cands, expl)
	stats := ex.Stats()
	expl.Steps = stats.Steps
	expl.historyTime = th.total()
	expl.solveTime = stats.SolveTime
	expl.genTime = time.Since(start)
	endSpan()
	o.emit(Event{Kind: "explore.done", Candidates: len(cands), Steps: expl.Steps,
		Elapsed: ms(expl.genTime)})
	return expl, nil
}

// Evaluate backtests a candidate set against the historical evidence and
// returns a streaming Run. Under the default parallel strategy the set is
// split into shared-run batches of at most the configured batch size
// (63), evaluated concurrently on a worker pool; each batch's verdicts
// are delivered on the Run's Suggestions channel as it completes.
func (s *Session) Evaluate(ctx context.Context, cands []metaprov.Candidate, bt Backtest, extra ...Option) (*Run, error) {
	o := s.opts.with(extra)
	if o.err != nil {
		return nil, o.err
	}
	if bt.BuildNet == nil {
		return nil, errors.New("metarepair: Backtest.BuildNet is required")
	}
	expl := &Exploration{Generated: len(cands), Candidates: cands}
	if o.filter != nil {
		kept := make([]metaprov.Candidate, 0, len(cands))
		for _, c := range cands {
			if o.filter(c) {
				kept = append(kept, c)
			}
		}
		expl.Filtered = len(cands) - len(kept)
		expl.Candidates = kept
		if expl.Filtered > 0 {
			o.emit(Event{Kind: "candidates.filtered", Filtered: expl.Filtered})
		}
	}
	tr := newTracer(o)
	return s.evaluate(ctx, expl, expl.Candidates, bt, o, tr, tr.start(SpanRun, "")), nil
}

// Stream runs the full explore→backtest pipeline and returns a streaming
// Run: per-suggestion verdicts arrive on the Run's channel and Wait
// returns the final ranked Report.
//
// Under StrategyParallel with the default PipelineStreaming mode the two
// stages run as one overlapped pipeline — the concurrent forest search
// (WithExploreWorkers) streams candidates straight into shared-run batches
// that launch while exploration is still producing — and Stream returns
// immediately; exploration errors then surface at Wait. Under
// PipelineBarrier (or the serial/sequential strategies) Stream keeps the
// legacy composition: it blocks until exploration finishes and returns any
// exploration error directly.
func (s *Session) Stream(ctx context.Context, sym Symptom, bt Backtest, extra ...Option) (*Run, error) {
	o := s.opts.with(extra)
	if o.err != nil {
		return nil, o.err
	}
	if bt.BuildNet == nil {
		return nil, errors.New("metarepair: Backtest.BuildNet is required")
	}
	if sym.Present == nil && sym.Goal.Table == "" {
		return nil, errors.New("metarepair: empty symptom")
	}
	// The streaming composition needs a finite candidate cap: the
	// suggestion buffer is sized from it so backtest workers never block
	// behind a slow (or absent) consumer. With the cap disabled the
	// candidate count is unbounded, so fall back to the barrier
	// composition, which sizes the buffer from the materialized list.
	if o.strategy == StrategyParallel && o.pipeline != PipelineBarrier && o.maxCandidates > 0 {
		return s.streamPipeline(ctx, sym, bt, o), nil
	}
	tr := newTracer(o)
	endRun := tr.start(SpanRun, "")
	expl, err := s.explore(ctx, sym, o, tr)
	if err != nil {
		return nil, err
	}
	return s.evaluate(ctx, expl, expl.Candidates, bt, o, tr, endRun), nil
}

// Repair is the blocking convenience wrapper: Stream plus Wait.
func (s *Session) Repair(ctx context.Context, sym Symptom, bt Backtest, extra ...Option) (*Report, error) {
	run, err := s.Stream(ctx, sym, bt, extra...)
	if err != nil {
		return nil, err
	}
	return run.Wait()
}

// evaluate starts the barrier-composition backtesting stage in the
// background and returns its Run handle. expl may be nil when the caller
// supplies candidates directly. tr carries any spans already recorded
// (the explore stage); endRun closes the run span once the report is
// assembled.
func (s *Session) evaluate(ctx context.Context, expl *Exploration, cands []metaprov.Candidate, bt Backtest, o options, tr *tracer, endRun func()) *Run {
	run := newRun(len(cands))
	job := s.backtestJob(bt, o)
	job.Candidates = cands
	batchSize := o.clampedBatchSize()
	// Sequential evaluation has no shared runs: everything is one "batch".
	batches := (len(cands) + batchSize - 1) / batchSize
	batchOf := func(i int) int { return i / batchSize }
	if o.strategy == StrategySequential {
		if len(cands) > 0 {
			batches = 1
		}
		batchOf = func(int) int { return 0 }
	}

	go func() {
		defer close(run.done)
		defer run.finish()
		start := time.Now()
		o.emit(Event{Kind: "backtest.start", Candidates: len(cands), Batches: batches,
			Parallelism: o.parallelism, Strategy: o.strategy.String()})
		endBacktest := tr.start(SpanBacktest, SpanRun)

		// Batch callbacks are serialized by the runner, so plain
		// accumulation of the per-shared-run engine counters is safe.
		var engStats ndlog.EngineStats
		stream := func(b backtest.Batch) {
			engStats.Add(b.Stats)
			if !b.Began.IsZero() {
				tr.add(Span{Name: SpanBatch, Parent: SpanBacktest, Index: b.Index,
					Start: b.Began, End: b.Ended})
			}
			o.emit(Event{Kind: "batch.done", Batch: b.Index, Size: len(b.Results),
				Elapsed: ms(time.Since(start))})
			for i, res := range b.Results {
				idx := b.Start + i
				run.push(Suggestion{
					Rank: idx + 1, Index: idx, Batch: b.Index,
					Candidate: cands[idx], Result: res,
				})
				o.emit(Event{Kind: "suggestion", Index: idx, Desc: res.Candidate.Describe(),
					Accepted: res.Accepted, KS: res.KS})
			}
		}

		var results []backtest.Result
		var err error
		switch o.strategy {
		case StrategySequential:
			results, err = job.RunSequentialContext(ctx)
			if err == nil {
				stream(backtest.Batch{Index: 0, Start: 0, Results: results,
					Began: start, Ended: time.Now()})
			}
		case StrategySerial:
			results, err = job.RunBatched(ctx, 1, batchSize, stream)
		default:
			results, err = job.RunBatched(ctx, o.parallelism, batchSize, stream)
		}
		if err != nil {
			run.err = err
			return
		}
		endBacktest()
		// Attribute the backtest window to the evaluation mode: the delta
		// child span covers the same bounds as its parent, so mode-aware
		// consumers can split time without reshaping existing aggregations.
		if o.eval == EvalDelta && o.strategy != StrategySequential {
			if bsp, ok := tr.find(SpanBacktest); ok {
				tr.add(Span{Name: SpanBacktestDelta, Parent: SpanBacktest,
					Start: bsp.Start, End: bsp.End})
			}
		}

		endVerdict := tr.start(SpanVerdict, SpanRun)
		rep := &Report{
			Results:    results,
			Candidates: cands,
			Generated:  len(cands),
			Evaluated:  len(results),
			Batches:    batches,
			Engine:     engStats,
			Timing:     Timing{Replay: time.Since(start)},
		}
		if expl != nil {
			rep.Explanation = expl.Explanation
			rep.Generated = expl.Generated
			rep.Filtered = expl.Filtered
			rep.Dropped = expl.Dropped
			rep.Steps = expl.Steps
			rep.Timing.HistoryLookups = expl.historyTime
			rep.Timing.ConstraintSolving = expl.solveTime
			rep.Timing.PatchGeneration = expl.genTime - expl.historyTime - expl.solveTime
		}
		for i, res := range results {
			rep.Suggestions = append(rep.Suggestions, Suggestion{
				Index: i, Batch: batchOf(i), Candidate: cands[i], Result: res,
			})
		}
		rep.rank()
		endVerdict()
		endRun()
		rep.Spans = tr.snapshot()
		run.report = rep
		o.emit(Event{Kind: "report", Candidates: len(cands), Passed: rep.Accepted,
			Elapsed: ms(time.Since(start))})
	}()
	return run
}

// backtestJob assembles the backtesting template shared by the barrier
// and streaming compositions.
func (s *Session) backtestJob(bt Backtest, o options) *backtest.Job {
	return &backtest.Job{
		Prog:              s.prog,
		BuildNet:          bt.BuildNet,
		State:             bt.State,
		Workload:          bt.Workload,
		Source:            s.workloadSource(bt, o),
		Effective:         bt.Effective,
		Alpha:             o.alpha,
		MaxPacketInFactor: o.maxPacketInFactor,
		SkipCoalesce:      !o.coalesce,
		Eval:              o.eval.ndlog(),
	}
}

func (o options) clampedBatchSize() int {
	if o.batchSize <= 0 || o.batchSize > backtest.MaxSharedCandidates {
		return backtest.MaxSharedCandidates
	}
	return o.batchSize
}

// filterAndCap applies the candidate filter and the candidate cap to a
// materialized cost-ordered list, recording the Filtered/Dropped
// accounting on expl and emitting the corresponding events. The cap keeps
// the cheapest — most plausible — repairs, and the drop is reported,
// never silent. Both the barrier explore stage and the streaming feeder's
// positive-symptom branch share this logic.
func (o options) filterAndCap(cands []metaprov.Candidate, expl *Exploration) []metaprov.Candidate {
	if o.filter != nil {
		kept := make([]metaprov.Candidate, 0, len(cands))
		for _, c := range cands {
			if o.filter(c) {
				kept = append(kept, c)
			}
		}
		expl.Filtered = len(cands) - len(kept)
		cands = kept
		if expl.Filtered > 0 {
			o.emit(Event{Kind: "candidates.filtered", Filtered: expl.Filtered})
		}
	}
	if o.maxCandidates > 0 && len(cands) > o.maxCandidates {
		expl.Dropped = len(cands) - o.maxCandidates
		cands = cands[:o.maxCandidates]
		o.emit(Event{Kind: "candidates.dropped", Dropped: expl.Dropped})
	}
	return cands
}

// streamPipeline runs explore→backtest as one overlapped streaming
// subsystem: the concurrent forest search feeds candidates through a
// filtered channel into a backtest.Pipeline that fills shared-run batches
// and launches them while exploration is still producing. It returns
// immediately; every error surfaces at Run.Wait.
func (s *Session) streamPipeline(ctx context.Context, sym Symptom, bt Backtest, o options) *Run {
	// The candidate count is unknown up front but bounded by the cap
	// (Stream routes cap-disabled calls to the barrier composition), so
	// the suggestion buffer can hold every possible verdict.
	run := newRun(o.maxCandidates)
	go func() {
		defer close(run.done)
		defer run.finish()
		run.report, run.err = s.runPipeline(ctx, sym, bt, o, run)
	}()
	return run
}

func (s *Session) runPipeline(ctx context.Context, sym Symptom, bt Backtest, o options, run *Run) (*Report, error) {
	start := time.Now()
	if o.sink != nil {
		// The feeder, the batch workers, and the assembly goroutine emit
		// concurrently; a fan-out with one attached (unbounded) drainer
		// serializes them without ever blocking the pipeline, and Close
		// flushes the backlog before the Run completes.
		fan := NewFanoutSink()
		fan.Attach(o.sink, 0)
		defer fan.Close()
		o.sink = fan
	}
	tr := newTracer(o)
	endRun := tr.start(SpanRun, "")
	pctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	// ectx governs the search alone: FirstAccepted cancels it (through
	// Pipeline.CancelSearch) without touching the in-flight batches.
	ectx, cancelExplore := context.WithCancel(pctx)
	defer cancelExplore()

	th := &timedHistory{rec: s.rec}
	ex := metaprov.NewExplorer(meta.NewModel(s.prog), th)
	o.budget.apply(ex)
	ex.Workers = o.exploreWorkers
	workers := ex.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	o.emit(Event{Kind: "explore.start", Symptom: sym.String(), Workers: workers})
	endExplore := tr.start(SpanExplore, SpanRun)

	// Feeder: forward the candidate stream into the pipeline, applying
	// the candidate filter and cap with the same accounting as the
	// barrier path. expl's fields are written before feedErr is sent and
	// read only after it is received.
	expl := &Exploration{Symptom: sym}
	pipe := make(chan metaprov.Candidate)
	feedErr := make(chan error, 1)
	go func() {
		defer close(pipe)
		var err error
		emitIdx := 0
		send := func(c metaprov.Candidate) bool {
			o.emit(Event{Kind: "explore.candidate", Index: emitIdx, Desc: c.Describe(), Cost: c.Cost})
			emitIdx++
			select {
			case pipe <- c:
				return true
			case <-ectx.Done():
				return false
			}
		}
		if sym.Present != nil {
			// Positive symptom: the full cost-ordered list is generated,
			// then filtered and capped with the barrier path's accounting,
			// and streamed into the pipeline from there.
			expl.Explanation = s.rec.Explain(*sym.Present)
			var cands []metaprov.Candidate
			cands, err = ex.RepairPositiveContext(ectx, *sym.Present, s.rec)
			expl.Generated = len(cands)
			for _, c := range o.filterAndCap(cands, expl) {
				if !send(c) {
					break
				}
			}
		} else {
			expl.Explanation = s.rec.ExplainMissing(s.prog, sym.Goal.Table, nil)
			// The cap bounds the cost-ordered stream itself: stopping at N
			// keeps the N cheapest, so nothing is dropped after the fact.
			ex.MaxCandidates = o.maxCandidates
			stream, errc := ex.ExploreStream(ectx, sym.Goal)
			for c := range stream {
				expl.Generated++
				if o.filter != nil && !o.filter(c) {
					expl.Filtered++
					continue
				}
				if !send(c) {
					break
				}
			}
			for range stream {
				// Drain after an early stop so the search's emitter exits.
			}
			err = <-errc
			if expl.Filtered > 0 {
				o.emit(Event{Kind: "candidates.filtered", Filtered: expl.Filtered})
			}
		}
		stats := ex.Stats()
		expl.Steps = stats.Steps
		expl.historyTime = th.total()
		expl.solveTime = stats.SolveTime
		expl.genTime = time.Since(start)
		endExplore()
		o.emit(Event{Kind: "explore.done",
			Candidates: expl.Generated - expl.Filtered - expl.Dropped,
			Steps:      expl.Steps, Elapsed: ms(expl.genTime)})
		feedErr <- err
	}()

	o.emit(Event{Kind: "backtest.start", Parallelism: o.parallelism,
		Strategy: o.strategy.String() + "/" + o.pipeline.String()})
	batchSize := o.clampedBatchSize()
	// OnBatch calls are serialized by the pipeline, so plain accumulation
	// of the per-shared-run engine counters is safe.
	var engStats ndlog.EngineStats
	suggest := func(b backtest.Batch) {
		engStats.Add(b.Stats)
		tr.add(Span{Name: SpanBatch, Parent: SpanBacktest, Index: b.Index,
			Start: b.Began, End: b.Ended})
		o.emit(Event{Kind: "batch.done", Batch: b.Index, Size: len(b.Results),
			Elapsed: ms(time.Since(start))})
		for i, res := range b.Results {
			idx := b.Start + i
			run.push(Suggestion{
				Rank: idx + 1, Index: idx, Batch: b.Index,
				Candidate: res.Candidate, Result: res,
			})
			o.emit(Event{Kind: "suggestion", Index: idx, Desc: res.Candidate.Describe(),
				Accepted: res.Accepted, KS: res.KS})
		}
	}
	pl := &backtest.Pipeline{
		Job:           s.backtestJob(bt, o),
		BatchSize:     batchSize,
		Parallelism:   o.parallelism,
		FirstAccepted: o.pipeline == PipelineFirstAccepted,
		CancelSearch:  cancelExplore,
		OnBatch:       suggest,
	}
	pr, plErr := pl.Run(pctx, pipe)
	backtestEnd := time.Now()
	ferr := <-feedErr
	if plErr != nil {
		return nil, plErr
	}
	if ferr != nil && !pr.EarlyStopped {
		// The search can only fail by cancellation; without an early stop
		// that cancellation came from the caller.
		return nil, ferr
	}

	// The streaming composition learns the backtest window only in
	// retrospect (the first batch launches while exploration is still
	// producing), so its span is recorded after the fact with the measured
	// bounds; overlap is how long it ran concurrently with exploration.
	var overlap, replay time.Duration
	if !pr.FirstBatchStart.IsZero() {
		tr.add(Span{Name: SpanBacktest, Parent: SpanRun, Start: pr.FirstBatchStart, End: backtestEnd})
		if o.eval == EvalDelta {
			tr.add(Span{Name: SpanBacktestDelta, Parent: SpanBacktest,
				Start: pr.FirstBatchStart, End: backtestEnd})
		}
		replay = backtestEnd.Sub(pr.FirstBatchStart)
		if es, ok := tr.find(SpanExplore); ok && es.End.After(pr.FirstBatchStart) {
			overlap = es.End.Sub(pr.FirstBatchStart)
			o.emit(Event{Kind: "pipeline.overlap", Elapsed: ms(overlap)})
		}
	}
	if pr.EarlyStopped {
		for i, ok := range pr.Evaluated {
			if ok && pr.Results[i].Accepted {
				o.emit(Event{Kind: "pipeline.stop", Index: i})
				break
			}
		}
	}

	// Solve and history times are summed across concurrent workers, so
	// they can exceed the exploration's wall clock; the patch-generation
	// residual is clamped rather than reported negative.
	patchGen := expl.genTime - expl.historyTime - expl.solveTime
	if patchGen < 0 {
		patchGen = 0
	}
	endVerdict := tr.start(SpanVerdict, SpanRun)
	rep := &Report{
		Explanation:  expl.Explanation,
		Results:      pr.Results,
		Candidates:   pr.Candidates,
		Generated:    expl.Generated,
		Filtered:     expl.Filtered,
		Dropped:      expl.Dropped,
		Batches:      pr.Batches,
		Steps:        expl.Steps,
		EarlyStopped: pr.EarlyStopped,
		Evaluated:    pr.EvaluatedCount(),
		evaluated:    pr.Evaluated,
		Engine:       engStats,
		Timing: Timing{
			HistoryLookups:    expl.historyTime,
			ConstraintSolving: expl.solveTime,
			PatchGeneration:   patchGen,
			Replay:            replay,
			Overlap:           overlap,
		},
	}
	for i := range pr.Candidates {
		if !pr.Evaluated[i] {
			continue
		}
		rep.Suggestions = append(rep.Suggestions, Suggestion{
			Index: i, Batch: i / batchSize, Candidate: pr.Candidates[i], Result: pr.Results[i],
		})
	}
	rep.rank()
	endVerdict()
	endRun()
	rep.Spans = tr.snapshot()
	o.emit(Event{Kind: "report", Candidates: len(pr.Candidates), Passed: rep.Accepted,
		Elapsed: ms(time.Since(start))})
	return rep, nil
}

// workloadSource resolves where backtesting streams its workload from:
// an explicit Backtest.Source wins, then the session's trace store
// (WithTraceStore, windowed by WithReplayWindow), then nil — leaving the
// in-memory Workload slice to the backtest engine's adapter.
func (s *Session) workloadSource(bt Backtest, o options) trace.Source {
	src := bt.Source
	if src == nil {
		// The session store steps in only when the evidence names no
		// workload of its own — an explicit Workload slice keeps winning
		// over the store, as documented on WithTraceStore.
		if o.store == nil || len(bt.Workload) > 0 {
			return nil
		}
		view := o.store.Source()
		if o.windowSet {
			view = view.Window(o.windowFrom, o.windowTo)
		}
		src = view
	}
	// Store-backed replay is observable regardless of how the view
	// reached the backtest (session option or explicit Backtest.Source).
	// Entries/Bytes/Segments describe the whole log being drawn from;
	// From/To record the window actually replayed.
	if v, ok := src.(*tracestore.View); ok {
		stats := v.Store().Stats()
		from, to := v.Bounds()
		o.emit(Event{Kind: "replay.open", Dir: v.Store().Dir(),
			Entries: stats.Entries, Bytes: stats.Bytes, Segments: stats.Segments,
			From: from, To: to})
	}
	return src
}

// Capture attaches the session's trace store (WithTraceStore) to the
// network as its packet-capture hook: from here until stop is called,
// every injected packet is appended to the store as one §5.4 log record.
// stop detaches the hook, makes the captured records durable, emits a
// capture.done event, and returns how many packets were captured along
// with the first capture error, if any.
func (s *Session) Capture(net *sdn.Network, extra ...Option) (stop func() (int64, error), err error) {
	o := s.opts.with(extra)
	if o.err != nil {
		return nil, o.err
	}
	if o.store == nil {
		return nil, errors.New("metarepair: Capture needs WithTraceStore")
	}
	rec := tracestore.NewRecorder(o.store)
	net.Capture = rec
	o.emit(Event{Kind: "capture.start", Dir: o.store.Dir()})
	return func() (int64, error) {
		net.Capture = nil
		if err := o.store.Sync(); err != nil {
			return rec.Count(), err
		}
		stats := o.store.Stats()
		o.emit(Event{Kind: "capture.done", Dir: o.store.Dir(),
			Entries: stats.Entries, Bytes: stats.Bytes, Segments: stats.Segments})
		return rec.Count(), rec.Err()
	}, nil
}

// ms converts a duration to fractional milliseconds for event logs.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
