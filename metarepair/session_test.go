package metarepair_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/sdn"
	"repro/internal/trace"
	"repro/metarepair"
)

const miniProgram = `
materialize(FlowTable, 1, 6, keys(0,1,2,3,4)).
r1 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dpt == 80, Sip < 64, Prt := 2.
r2 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dpt == 80, Sip >= 64, Prt := 3.
r5 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 2, Dpt == 80, Prt := 1.
r7 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 2, Dpt == 80, Prt := 2.
`

func miniNet() *sdn.Network {
	n := sdn.NewNetwork()
	s1, s2, s3 := sdn.NewSwitch("s1", 1), sdn.NewSwitch("s2", 2), sdn.NewSwitch("s3", 3)
	n.AddSwitch(s1)
	n.AddSwitch(s2)
	n.AddSwitch(s3)
	s1.Wire(2, "s2")
	s2.Wire(3, "s1")
	s1.Wire(3, "s3")
	s3.Wire(3, "s1")
	n.AddHostAt(sdn.NewHost("h1", 201, "s2"), 1)
	n.AddHostAt(sdn.NewHost("h2", 202, "s3"), 2)
	for i := 1; i <= 64; i++ {
		n.AddHostAt(sdn.NewHost(fmt.Sprintf("c%02d", i), int64(i), "s1"), 10+i)
	}
	return n
}

func miniWorkload() []trace.Entry {
	var sources []trace.HostSpec
	for i := 1; i <= 64; i++ {
		sources = append(sources, trace.HostSpec{ID: fmt.Sprintf("c%02d", i), IP: int64(i)})
	}
	return trace.Generate(trace.Config{
		Seed:     7,
		Sources:  sources,
		Services: []trace.Service{{DstIP: 201, Port: sdn.PortHTTP, Proto: sdn.ProtoTCP, Weight: 1}},
		Flows:    400,
	})
}

// runDiagnostic builds a session over the mini scenario and replays the
// buggy run so the recorder holds the diagnostic history. The candidate
// cap keeps test runtimes proportionate; callers may override it.
func runDiagnostic(t *testing.T, opts ...metarepair.Option) (*metarepair.Session, []trace.Entry) {
	t.Helper()
	opts = append([]metarepair.Option{metarepair.WithMaxCandidates(12)}, opts...)
	sess, err := metarepair.NewSession(ndlog.MustParse("mini", miniProgram), opts...)
	if err != nil {
		t.Fatal(err)
	}
	net := miniNet()
	net.Ctrl = sess.Controller()
	wl := miniWorkload()
	trace.Replay(net, wl, 1)
	return sess, wl
}

func miniBacktest(wl []trace.Entry) metarepair.Backtest {
	return metarepair.Backtest{
		BuildNet: miniNet,
		Workload: wl,
		Effective: func(n *sdn.Network, _ *sdn.NDlogController, tag int) bool {
			return n.Hosts["h2"].PortCountFor(sdn.PortHTTP, tag) > 0
		},
	}
}

func miniSymptom() metarepair.Symptom {
	return metarepair.Missing("FlowTable",
		metarepair.Pin(3), nil, nil, nil, metarepair.Pin(80), metarepair.Pin(2))
}

func TestRepairMissingTuple(t *testing.T) {
	sess, wl := runDiagnostic(t)
	report, err := sess.Repair(context.Background(), miniSymptom(), miniBacktest(wl))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Suggestions) == 0 || report.Accepted == 0 {
		t.Fatalf("suggestions=%d accepted=%d", len(report.Suggestions), report.Accepted)
	}
	// Accepted suggestions must come first and the top one must be the
	// paper's fix.
	top := report.Suggestions[0]
	if !top.Result.Accepted {
		t.Fatalf("top suggestion not accepted: %v", top)
	}
	if !strings.Contains(top.Candidate.Describe(), "change constant 2 in r7 (sel/0/R) to 3") {
		t.Fatalf("top suggestion = %q", top.Candidate.Describe())
	}
	for i := 1; i < len(report.Suggestions); i++ {
		if report.Suggestions[i].Result.Accepted && !report.Suggestions[i-1].Result.Accepted {
			t.Fatal("accepted suggestion ranked after a rejected one")
		}
	}
	if len(report.Results) != len(report.Suggestions) {
		t.Fatalf("Results (%d) and Suggestions (%d) disagree", len(report.Results), len(report.Suggestions))
	}
	if !strings.Contains(report.Render(), "accepted") {
		t.Fatal("Render missing verdicts")
	}
	if report.Explanation == nil {
		t.Fatal("missing negative-provenance explanation")
	}
	if report.Timing.Total() <= 0 {
		t.Fatal("missing timing breakdown")
	}
}

func TestRepairPresentTuple(t *testing.T) {
	sess, wl := runDiagnostic(t)
	// The buggy r7 derives FlowTable(2,...,2) entries that hijack S2's
	// HTTP toward the unwired port 2: a positive symptom. Find one
	// concrete bad tuple from the recorder.
	var bad *ndlog.Tuple
	for _, tp := range sess.Recorder().TuplesOf("FlowTable") {
		if tp.Args[0].Int == 2 && tp.Args[5].Int == 2 {
			c := tp.Clone()
			bad = &c
			break
		}
	}
	if bad == nil {
		t.Fatal("no bad flow entry recorded")
	}
	report, err := sess.Repair(context.Background(), metarepair.Present(*bad), metarepair.Backtest{
		BuildNet: miniNet,
		Workload: wl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Suggestions) == 0 {
		t.Fatal("no positive-symptom suggestions")
	}
	all := ""
	for _, s := range report.Suggestions {
		all += s.Candidate.Describe() + "\n"
	}
	if !strings.Contains(all, "r7") {
		t.Fatalf("no r7 repair among positive suggestions:\n%s", all)
	}
	if report.Explanation == nil || report.Explanation.Size() < 2 {
		t.Fatal("positive symptom must carry a provenance explanation")
	}
}

func TestRepairEmptySymptom(t *testing.T) {
	sess, wl := runDiagnostic(t)
	if _, err := sess.Repair(context.Background(), metarepair.Symptom{}, miniBacktest(wl)); err == nil {
		t.Fatal("expected empty-symptom error")
	}
}

func TestEvaluateRequiresBuildNet(t *testing.T) {
	sess, _ := runDiagnostic(t)
	if _, err := sess.Evaluate(context.Background(), nil, metarepair.Backtest{}); err == nil {
		t.Fatal("expected BuildNet error")
	}
	if _, err := sess.Stream(context.Background(), miniSymptom(), metarepair.Backtest{}); err == nil {
		t.Fatal("expected BuildNet error from Stream")
	}
}

func TestExplainFacades(t *testing.T) {
	sess, _ := runDiagnostic(t)
	tuples := sess.Recorder().TuplesOf("FlowTable")
	if len(tuples) == 0 {
		t.Fatal("no recorded flow entries")
	}
	if v := sess.Explain(tuples[0]); v == nil || v.Size() < 2 {
		t.Fatal("Explain returned a trivial tree")
	}
	if v := sess.ExplainMissing("FlowTable", nil); v == nil || len(v.Children) == 0 {
		t.Fatal("ExplainMissing returned no NDERIVE children")
	}
}

func TestNewSessionRejectsBadProgram(t *testing.T) {
	bad := &ndlog.Program{Name: "bad", Rules: []*ndlog.Rule{{ID: "r"}}}
	if _, err := metarepair.NewSession(bad); err == nil {
		t.Fatal("expected compile error")
	}
}

func TestStreamDeliversAllSuggestions(t *testing.T) {
	sess, wl := runDiagnostic(t)
	run, err := sess.Stream(context.Background(), miniSymptom(), miniBacktest(wl),
		metarepair.WithBatchSize(2))
	if err != nil {
		t.Fatal(err)
	}
	var streamed []metarepair.Suggestion
	for s := range run.Suggestions() {
		streamed = append(streamed, s)
	}
	report, err := run.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(report.Suggestions) {
		t.Fatalf("streamed %d, report has %d", len(streamed), len(report.Suggestions))
	}
	// Every candidate index appears exactly once on the stream, and each
	// streamed verdict matches the report's candidate-order results.
	seen := make(map[int]bool)
	for _, s := range streamed {
		if seen[s.Index] {
			t.Fatalf("candidate %d streamed twice", s.Index)
		}
		seen[s.Index] = true
		if s.Result.Accepted != report.Results[s.Index].Accepted {
			t.Fatalf("candidate %d: streamed verdict %v != report %v",
				s.Index, s.Result.Accepted, report.Results[s.Index].Accepted)
		}
	}
	if report.Batches < 2 {
		t.Fatalf("expected multiple batches, got %d", report.Batches)
	}
}

// TestBatchingEquivalence verifies the headline property of the batched
// evaluator: splitting a candidate set — including one larger than a
// single shared run's 63-tag space — into concurrent shared-run batches
// produces exactly the accept/reject decisions of one shared run.
func TestBatchingEquivalence(t *testing.T) {
	sess, wl := runDiagnostic(t)
	ctx := context.Background()
	expl, err := sess.Explore(ctx, miniSymptom())
	if err != nil {
		t.Fatal(err)
	}
	base := expl.Candidates
	if len(base) < 4 {
		t.Fatalf("only %d candidates", len(base))
	}

	// Reference: one shared run over the base set.
	oneRun, err := sess.Evaluate(ctx, base, miniBacktest(wl),
		metarepair.WithStrategy(metarepair.StrategySerial))
	if err != nil {
		t.Fatal(err)
	}
	oneRep, err := oneRun.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if oneRep.Batches != 1 {
		t.Fatalf("reference run used %d batches", oneRep.Batches)
	}

	// Replicate the set past the 63-candidate cliff; the old API errored
	// here, the new one must batch transparently.
	var big []metaprov.Candidate
	for len(big) < 70 {
		big = append(big, base...)
	}
	big = big[:70]
	batchedRun, err := sess.Evaluate(ctx, big, miniBacktest(wl),
		metarepair.WithBatchSize(16), metarepair.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	batchedRep, err := batchedRun.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(batchedRep.Results) != 70 {
		t.Fatalf("results = %d", len(batchedRep.Results))
	}
	if batchedRep.Batches != 5 {
		t.Fatalf("batches = %d, want 5", batchedRep.Batches)
	}
	for i, res := range batchedRep.Results {
		ref := oneRep.Results[i%len(base)]
		if res.Accepted != ref.Accepted || res.Effective != ref.Effective {
			t.Errorf("candidate %d (%s): batched accepted=%v effective=%v, shared run accepted=%v effective=%v",
				i, res.Candidate.Describe(), res.Accepted, res.Effective, ref.Accepted, ref.Effective)
		}
		if res.KS != ref.KS {
			t.Errorf("candidate %d: batched KS %v != shared %v", i, res.KS, ref.KS)
		}
	}
}

func TestContextCancellationMidBacktest(t *testing.T) {
	sess, wl := runDiagnostic(t)
	ctx := context.Background()
	expl, err := sess.Explore(ctx, miniSymptom())
	if err != nil {
		t.Fatal(err)
	}
	if len(expl.Candidates) < 3 {
		t.Fatalf("only %d candidates", len(expl.Candidates))
	}
	cancelCtx, cancel := context.WithCancel(ctx)
	run, err := sess.Evaluate(cancelCtx, expl.Candidates, miniBacktest(wl),
		metarepair.WithBatchSize(1), metarepair.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	// Cancel as soon as the first batch lands; later batches must not run.
	first, ok := <-run.Suggestions()
	if !ok {
		t.Fatal("stream closed before first suggestion")
	}
	cancel()
	if _, err := run.Wait(); err == nil {
		t.Fatal("Wait must surface the cancellation")
	} else if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var rest int
	for range run.Suggestions() {
		rest++
	}
	if rest >= len(expl.Candidates)-1 {
		t.Fatalf("cancellation did not stop the run: %d further suggestions after #%d", rest, first.Index)
	}
}

func TestContextCancellationDuringExplore(t *testing.T) {
	sess, _ := runDiagnostic(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Explore(ctx, miniSymptom()); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDroppedCandidatesAreReported(t *testing.T) {
	sess, wl := runDiagnostic(t)
	// Positive symptom: the full cost-ordered list is generated, then the
	// cap drops the surplus — visibly.
	var bad *ndlog.Tuple
	for _, tp := range sess.Recorder().TuplesOf("FlowTable") {
		if tp.Args[0].Int == 2 && tp.Args[5].Int == 2 {
			c := tp.Clone()
			bad = &c
			break
		}
	}
	if bad == nil {
		t.Fatal("no bad flow entry recorded")
	}
	var events []metarepair.Event
	report, err := sess.Repair(context.Background(), metarepair.Present(*bad),
		metarepair.Backtest{BuildNet: miniNet, Workload: wl},
		metarepair.WithMaxCandidates(2),
		metarepair.WithEventSink(metarepair.SinkFunc(func(e metarepair.Event) {
			events = append(events, e)
		})))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Suggestions) != 2 {
		t.Fatalf("suggestions = %d, want 2", len(report.Suggestions))
	}
	if report.Dropped == 0 {
		t.Fatal("Dropped not reported")
	}
	if report.Generated != len(report.Candidates)+report.Dropped {
		t.Fatalf("Generated %d != kept %d + dropped %d",
			report.Generated, len(report.Candidates), report.Dropped)
	}
	if !strings.Contains(report.Render(), "dropped by candidate budget") {
		t.Fatal("Render must surface the drop")
	}
	found := false
	for _, e := range events {
		if e.Kind == "candidates.dropped" && e.Dropped == report.Dropped {
			found = true
		}
	}
	if !found {
		t.Fatalf("no candidates.dropped event among %d events", len(events))
	}
}

func TestCandidateFilterReported(t *testing.T) {
	sess, wl := runDiagnostic(t)
	report, err := sess.Repair(context.Background(), miniSymptom(), miniBacktest(wl),
		metarepair.WithCandidateFilter(func(c metaprov.Candidate) bool {
			return !strings.Contains(c.Describe(), "insert")
		}))
	if err != nil {
		t.Fatal(err)
	}
	if report.Filtered == 0 {
		t.Fatal("filter removed nothing")
	}
	for _, s := range report.Suggestions {
		if strings.Contains(s.Candidate.Describe(), "insert") {
			t.Fatalf("filtered candidate evaluated: %s", s.Candidate.Describe())
		}
	}
}

func TestEvaluateAppliesCandidateFilter(t *testing.T) {
	sess, wl := runDiagnostic(t)
	ctx := context.Background()
	expl, err := sess.Explore(ctx, miniSymptom())
	if err != nil {
		t.Fatal(err)
	}
	run, err := sess.Evaluate(ctx, expl.Candidates, miniBacktest(wl),
		metarepair.WithCandidateFilter(func(c metaprov.Candidate) bool {
			return !strings.Contains(c.Describe(), "insert")
		}))
	if err != nil {
		t.Fatal(err)
	}
	report, err := run.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if report.Filtered == 0 {
		t.Fatal("Evaluate must honor WithCandidateFilter")
	}
	if len(report.Results)+report.Filtered != len(expl.Candidates) {
		t.Fatalf("evaluated %d + filtered %d != supplied %d",
			len(report.Results), report.Filtered, len(expl.Candidates))
	}
	for _, s := range report.Suggestions {
		if strings.Contains(s.Candidate.Describe(), "insert") {
			t.Fatalf("filtered candidate evaluated: %s", s.Candidate.Describe())
		}
	}
}

func TestSequentialStrategyBatchBookkeeping(t *testing.T) {
	sess, wl := runDiagnostic(t)
	report, err := sess.Repair(context.Background(), miniSymptom(), miniBacktest(wl),
		metarepair.WithStrategy(metarepair.StrategySequential), metarepair.WithBatchSize(2))
	if err != nil {
		t.Fatal(err)
	}
	// Sequential evaluation performs no shared runs: the report must not
	// fabricate multi-batch bookkeeping.
	if report.Batches != 1 {
		t.Fatalf("Batches = %d, want 1 for sequential", report.Batches)
	}
	for _, s := range report.Suggestions {
		if s.Batch != 0 {
			t.Fatalf("suggestion %d carries batch %d under sequential strategy", s.Index, s.Batch)
		}
	}
}

func TestJSONLSinkEventLog(t *testing.T) {
	var buf bytes.Buffer
	sess, wl := runDiagnostic(t, metarepair.WithEventSink(metarepair.NewJSONLSink(&buf)))
	if _, err := sess.Repair(context.Background(), miniSymptom(), miniBacktest(wl),
		metarepair.WithBatchSize(2)); err != nil {
		t.Fatal(err)
	}
	kinds := make(map[string]int)
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var e metarepair.Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		if e.Time.IsZero() {
			t.Fatalf("event %q missing timestamp", e.Kind)
		}
		kinds[e.Kind]++
	}
	for _, want := range []string{"explore.start", "explore.done", "backtest.start", "batch.done", "suggestion", "report"} {
		if kinds[want] == 0 {
			t.Errorf("no %q event; got %v", want, kinds)
		}
	}
	if kinds["batch.done"] < 2 {
		t.Errorf("expected multiple batch.done events, got %d", kinds["batch.done"])
	}
	if kinds["suggestion"] != kinds["batch.done"] && kinds["suggestion"] < kinds["batch.done"] {
		t.Errorf("suggestion events (%d) fewer than batches (%d)", kinds["suggestion"], kinds["batch.done"])
	}
}
