package metarepair

import (
	"sync"
	"time"
)

// Span is one timed region of a pipeline run. Spans form a small fixed
// hierarchy — "run" covers the whole pipeline, its children are
// "explore", "backtest", and "verdict", and each shared-run batch is a
// "batch" child of "backtest" carrying its batch index — so consumers
// can aggregate by name without unbounded label cardinality. Span
// boundaries are surfaced as first-class span.start/span.end events on
// the EventSink, and the completed set is returned on Report.Spans.
type Span struct {
	// Name identifies the region: run, explore, backtest, batch, verdict.
	Name string
	// Parent is the enclosing span's name ("" for the root).
	Parent string
	// Index distinguishes sibling batch spans (the batch index); zero for
	// the singleton spans.
	Index int
	Start time.Time
	End   time.Time
}

// Duration is the span's wall-clock extent.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Span and child names used by the session pipeline.
const (
	SpanRun      = "run"
	SpanExplore  = "explore"
	SpanBacktest = "backtest"
	SpanBatch    = "batch"
	SpanVerdict  = "verdict"
	// SpanBacktestDelta is recorded as a child of SpanBacktest, covering
	// the same window, when the shared runs used delta evaluation — so
	// span consumers can attribute backtest time to a mode without any
	// existing "backtest" aggregation changing shape.
	SpanBacktestDelta = "backtest.delta"
)

// tracer collects the spans of one pipeline run and mirrors their
// boundaries onto the event sink. It is safe for concurrent use: under
// the streaming composition the feeder goroutine ends the explore span
// while batch workers record batch spans.
type tracer struct {
	o  options
	mu sync.Mutex
	sp []Span
}

func newTracer(o options) *tracer { return &tracer{o: o} }

// start opens a live span, emitting span.start now; the returned func
// closes it, recording the span and emitting span.end.
func (t *tracer) start(name, parent string) func() {
	begin := time.Now()
	t.o.emit(Event{Time: begin, Kind: "span.start", Span: name, Parent: parent})
	return func() {
		s := Span{Name: name, Parent: parent, Start: begin, End: time.Now()}
		t.record(s)
		t.o.emit(Event{Time: s.End, Kind: "span.end", Span: name, Parent: parent, Elapsed: ms(s.Duration())})
	}
}

// add records a span that was timed externally (batch workers stamp
// their own bounds; the streaming composition learns the backtest
// window only after the fact) and emits both boundary events carrying
// the measured timestamps rather than emission time.
func (t *tracer) add(s Span) {
	t.record(s)
	t.o.emit(Event{Time: s.Start, Kind: "span.start", Span: s.Name, Parent: s.Parent, Batch: s.Index})
	t.o.emit(Event{Time: s.End, Kind: "span.end", Span: s.Name, Parent: s.Parent, Batch: s.Index,
		Elapsed: ms(s.Duration())})
}

func (t *tracer) record(s Span) {
	t.mu.Lock()
	t.sp = append(t.sp, s)
	t.mu.Unlock()
}

// find returns the first recorded span with the given name.
func (t *tracer) find(name string) (Span, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.sp {
		if s.Name == name {
			return s, true
		}
	}
	return Span{}, false
}

// snapshot returns the recorded spans in completion order.
func (t *tracer) snapshot() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.sp))
	copy(out, t.sp)
	return out
}
