package metarepair_test

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/obsv"
	"repro/metarepair"
)

// collectSink gathers every emitted event for post-run assertions.
type collectSink struct {
	mu     sync.Mutex
	events []metarepair.Event
}

func (c *collectSink) Emit(e metarepair.Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *collectSink) snapshot() []metarepair.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]metarepair.Event(nil), c.events...)
}

// spansByName indexes a report's spans for assertions.
func spansByName(spans []metarepair.Span) map[string][]metarepair.Span {
	out := make(map[string][]metarepair.Span)
	for _, s := range spans {
		out[s.Name] = append(out[s.Name], s)
	}
	return out
}

// checkSpanHierarchy asserts the invariants every composition must
// provide: one run/explore/backtest/verdict span each, batch spans under
// backtest, coherent bounds, and balanced span.start/span.end events.
func checkSpanHierarchy(t *testing.T, rep *metarepair.Report, events []metarepair.Event) {
	t.Helper()
	if len(rep.Spans) == 0 {
		t.Fatal("report carries no spans")
	}
	by := spansByName(rep.Spans)
	for _, name := range []string{metarepair.SpanRun, metarepair.SpanExplore,
		metarepair.SpanBacktest, metarepair.SpanVerdict} {
		if len(by[name]) != 1 {
			t.Fatalf("span %q appears %d times, want 1 (spans: %+v)", name, len(by[name]), rep.Spans)
		}
	}
	if len(by[metarepair.SpanBatch]) != rep.Batches {
		t.Fatalf("%d batch spans for %d batches", len(by[metarepair.SpanBatch]), rep.Batches)
	}
	run := by[metarepair.SpanRun][0]
	if run.Parent != "" {
		t.Fatalf("run span parent = %q, want root", run.Parent)
	}
	for _, s := range rep.Spans {
		if s.End.Before(s.Start) {
			t.Fatalf("span %q ends before it starts: %+v", s.Name, s)
		}
		if s.Name == metarepair.SpanRun {
			continue
		}
		wantParent := metarepair.SpanRun
		if s.Name == metarepair.SpanBatch || s.Name == metarepair.SpanBacktestDelta {
			wantParent = metarepair.SpanBacktest
		}
		if s.Parent != wantParent {
			t.Fatalf("span %q parent = %q, want %q", s.Name, s.Parent, wantParent)
		}
		if s.Start.Before(run.Start) || s.End.After(run.End) {
			t.Fatalf("span %q [%v, %v] escapes the run span [%v, %v]",
				s.Name, s.Start, s.End, run.Start, run.End)
		}
	}
	// The default evaluation mode is delta, so every shared-run
	// composition must attribute the backtest window to it: exactly one
	// backtest.delta child covering the same bounds as its parent.
	bt := by[metarepair.SpanBacktest][0]
	if deltas := by[metarepair.SpanBacktestDelta]; len(deltas) != 1 {
		t.Fatalf("span %q appears %d times, want 1", metarepair.SpanBacktestDelta, len(deltas))
	} else if !deltas[0].Start.Equal(bt.Start) || !deltas[0].End.Equal(bt.End) {
		t.Fatalf("delta span [%v, %v] does not cover the backtest span [%v, %v]",
			deltas[0].Start, deltas[0].End, bt.Start, bt.End)
	}
	verdict := by[metarepair.SpanVerdict][0]
	if verdict.Start.Before(by[metarepair.SpanExplore][0].End) {
		t.Fatal("verdict span started before exploration ended")
	}
	// Span boundaries are first-class sink events: balanced start/end
	// pairs for every recorded span, in the same vocabulary.
	starts, ends := map[string]int{}, map[string]int{}
	for _, e := range events {
		switch e.Kind {
		case "span.start":
			starts[e.Span]++
		case "span.end":
			ends[e.Span]++
		}
	}
	for name, spans := range by {
		if starts[name] != len(spans) || ends[name] != len(spans) {
			t.Fatalf("span %q: %d recorded, %d start / %d end events",
				name, len(spans), starts[name], ends[name])
		}
	}
}

// TestReportSpansStreaming covers the overlapped streaming composition —
// the batch spans come from pipeline workers and the backtest span is
// reconstructed from the first batch launch.
func TestReportSpansStreaming(t *testing.T) {
	sink := &collectSink{}
	sess, wl := runDiagnostic(t, metarepair.WithEventSink(sink))
	rep, err := sess.Repair(context.Background(), miniSymptom(), miniBacktest(wl),
		metarepair.WithBatchSize(2))
	if err != nil {
		t.Fatal(err)
	}
	checkSpanHierarchy(t, rep, sink.snapshot())
	by := spansByName(rep.Spans)
	if got := by[metarepair.SpanBacktest][0].Duration(); got != rep.Timing.Replay {
		t.Fatalf("Timing.Replay = %v, backtest span = %v — they must be derived from the same span",
			rep.Timing.Replay, got)
	}
}

// TestReportSpansBarrier covers the barrier composition (explore fully,
// then evaluate), where the backtest span is timed live.
func TestReportSpansBarrier(t *testing.T) {
	sink := &collectSink{}
	sess, wl := runDiagnostic(t, metarepair.WithEventSink(sink))
	rep, err := sess.Repair(context.Background(), miniSymptom(), miniBacktest(wl),
		metarepair.WithPipelineMode(metarepair.PipelineBarrier), metarepair.WithBatchSize(2))
	if err != nil {
		t.Fatal(err)
	}
	checkSpanHierarchy(t, rep, sink.snapshot())
	// Under the barrier composition exploration strictly precedes replay.
	by := spansByName(rep.Spans)
	if by[metarepair.SpanBacktest][0].Start.Before(by[metarepair.SpanExplore][0].End) {
		t.Fatal("barrier composition overlapped explore and backtest")
	}
}

// TestMetricsSinkRecordsSpans drives a full repair through a MetricsSink
// and checks the session_* families aggregate what the report says.
func TestMetricsSinkRecordsSpans(t *testing.T) {
	reg := obsv.NewRegistry()
	sink := metarepair.NewMetricsSink(reg)
	sess, wl := runDiagnostic(t, metarepair.WithEventSink(sink))
	rep, err := sess.Repair(context.Background(), miniSymptom(), miniBacktest(wl),
		metarepair.WithBatchSize(2))
	if err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	sc, err := obsv.ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parsing exposition: %v\n%s", err, sb.String())
	}
	for span, want := range map[string]float64{
		"run": 1, "explore": 1, "backtest": 1, "verdict": 1,
		"batch": float64(rep.Batches),
	} {
		got, ok := sc.Value("session_span_duration_seconds_count",
			map[string]string{"span": span})
		if !ok || got != want {
			t.Fatalf("span %q histogram count = %v (%v), want %v\n%s", span, got, ok, want, sb.String())
		}
	}
	accepted := sc.Sum("session_suggestions_total", map[string]string{"verdict": "accepted"})
	rejected := sc.Sum("session_suggestions_total", map[string]string{"verdict": "rejected"})
	if int(accepted) != rep.Accepted || int(accepted+rejected) != len(rep.Suggestions) {
		t.Fatalf("suggestion counters accepted=%v rejected=%v, report accepted=%d total=%d",
			accepted, rejected, rep.Accepted, len(rep.Suggestions))
	}
	if v := sc.Sum("session_events_total", nil); v <= 0 {
		t.Fatal("no events counted")
	}
}
