package metarepair_test

import (
	"context"
	"math"
	"sync"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracestore"
	"repro/metarepair"
)

// captureMiniWorkload replays the mini workload through a capture-hooked
// network so the store holds the live traffic — the §5.4 capture path.
func captureMiniWorkload(t *testing.T, sess *metarepair.Session, st *tracestore.Store) {
	t.Helper()
	net := miniNet()
	stop, err := sess.Capture(net, metarepair.WithTraceStore(st))
	if err != nil {
		t.Fatal(err)
	}
	wl := miniWorkload()
	if n := trace.Replay(net, wl, 1); n != len(wl) {
		t.Fatalf("replayed %d of %d entries", n, len(wl))
	}
	captured, err := stop()
	if err != nil {
		t.Fatal(err)
	}
	if captured != int64(len(wl)) {
		t.Fatalf("captured %d of %d packets", captured, len(wl))
	}
}

// TestStoreBackedEvaluateMatchesSlice is the acceptance check at the API
// level: candidates evaluated against a workload streamed from the
// on-disk store get verdicts identical to the in-memory slice path.
func TestStoreBackedEvaluateMatchesSlice(t *testing.T) {
	ctx := context.Background()
	sess, wl := runDiagnostic(t)
	expl, err := sess.Explore(ctx, miniSymptom())
	if err != nil {
		t.Fatal(err)
	}
	if len(expl.Candidates) == 0 {
		t.Fatal("no candidates")
	}

	sliceRun, err := sess.Evaluate(ctx, expl.Candidates, miniBacktest(wl))
	if err != nil {
		t.Fatal(err)
	}
	sliceRep, err := sliceRun.Wait()
	if err != nil {
		t.Fatal(err)
	}

	st, err := tracestore.Open(t.TempDir(), tracestore.Options{SegmentEntries: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	captureMiniWorkload(t, sess, st)

	var mu sync.Mutex
	kinds := map[string]int{}
	sink := metarepair.SinkFunc(func(e metarepair.Event) {
		mu.Lock()
		kinds[e.Kind]++
		mu.Unlock()
	})
	bt := miniBacktest(nil) // no slice: the store is the workload
	storeRun, err := sess.Evaluate(ctx, expl.Candidates, bt,
		metarepair.WithTraceStore(st), metarepair.WithEventSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	storeRep, err := storeRun.Wait()
	if err != nil {
		t.Fatal(err)
	}

	if len(storeRep.Results) != len(sliceRep.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(storeRep.Results), len(sliceRep.Results))
	}
	for i := range sliceRep.Results {
		a, b := sliceRep.Results[i], storeRep.Results[i]
		if a.Accepted != b.Accepted || a.Effective != b.Effective || a.KS != b.KS {
			t.Fatalf("verdict %d diverged: slice %+v vs store %+v", i, a, b)
		}
	}
	if storeRep.Accepted == 0 {
		t.Fatal("store-backed run accepted nothing")
	}
	if kinds["replay.open"] == 0 {
		t.Fatalf("no replay.open event: %v", kinds)
	}
}

// TestReplayWindow restricts store-backed replay to a time slice of the
// captured history.
func TestReplayWindow(t *testing.T) {
	ctx := context.Background()
	sess, _ := runDiagnostic(t)
	expl, err := sess.Explore(ctx, miniSymptom())
	if err != nil {
		t.Fatal(err)
	}
	st, err := tracestore.Open(t.TempDir(), tracestore.Options{SegmentEntries: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	captureMiniWorkload(t, sess, st)

	bt := miniBacktest(nil)
	// A window covering the whole capture accepts repairs...
	run, err := sess.Evaluate(ctx, expl.Candidates, bt,
		metarepair.WithTraceStore(st), metarepair.WithReplayWindow(0, math.MaxInt64))
	if err != nil {
		t.Fatal(err)
	}
	full, err := run.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if full.Accepted == 0 {
		t.Fatal("full window accepted nothing")
	}
	// ...while an empty window replays no traffic, so nothing can be
	// shown effective.
	run, err = sess.Evaluate(ctx, expl.Candidates, bt,
		metarepair.WithTraceStore(st), metarepair.WithReplayWindow(-10, -1))
	if err != nil {
		t.Fatal(err)
	}
	empty, err := run.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if empty.Accepted != 0 {
		t.Fatalf("empty window accepted %d repairs", empty.Accepted)
	}
}

// TestCaptureNeedsStore pins the option contract.
func TestCaptureNeedsStore(t *testing.T) {
	sess, _ := runDiagnostic(t)
	if _, err := sess.Capture(miniNet()); err == nil {
		t.Fatal("Capture without WithTraceStore succeeded")
	}
}
