package metarepair

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ndlog"
	"repro/internal/sdn"
	"repro/internal/sentinel"
	"repro/internal/trace"
	"repro/internal/tracestore"
)

// Detection is one symptomatic window a Watcher found: relevant traffic
// flowed in [From, To] and the symptom held when the window closed.
type Detection struct {
	// Watch and Scenario label the detecting loop.
	Watch    string
	Scenario string
	// Kind is "missing" or "present" (which half of the Symptom fired).
	Kind string
	// From and To bound the offending window (inclusive trace times).
	From, To int64
	// Triggers counts the symptom-relevant packets in the window.
	Triggers int64
	// At is the wall-clock detection instant — the time-to-validated-
	// repair SLO measures from here.
	At time.Time
}

// WatchConfig configures a self-healing loop. Program, Symptom,
// BuildNet, Store, and Window are required.
type WatchConfig struct {
	// Label names the watch in events ("" = Scenario).
	Label string
	// Scenario labels events and metrics (bounded vocabulary: the
	// registered scenario names).
	Scenario string

	// Store is the live trace log to follow.
	Store *tracestore.Store
	// Program is the controller program under watch (the possibly-buggy
	// one). The monitor runs it unmodified.
	Program *ndlog.Program
	// Symptom is the predicate to evaluate over windows.
	Symptom Symptom
	// BuildNet builds the topology (fresh per use — the monitor takes
	// one, every repair diagnosis another, every backtest batch more).
	BuildNet func() *sdn.Network
	// State seeds the controller before traffic.
	State []ndlog.Tuple
	// Effective judges a repair tag during backtesting.
	Effective func(net *sdn.Network, ctl *sdn.NDlogController, tag int) bool

	// Trigger marks symptom-relevant stream entries; nil derives one
	// from the symptom's pinned goal arguments (see sentinel.
	// TriggerFromGoal). MinTriggers is the per-window threshold
	// (default 1).
	Trigger     func(trace.Entry) bool
	MinTriggers int64

	// Window, Hop, Debounce shape the sliding windows (trace ticks);
	// see sentinel.Config. Window is required.
	Window, Hop, Debounce int64
	// Lookback widens each repair's replay window: the diagnosis
	// replays [From-Lookback, To] so symptoms that depend on earlier
	// state (learning tables) still reproduce. Default 0.
	Lookback int64

	// MaxConcurrent bounds simultaneous auto-repairs (default 1).
	// Detections beyond the bound — or for a window overlapping a
	// repair already in flight — are suppressed, visibly.
	MaxConcurrent int
	// Poll is the tail's fallback wake interval (see tracestore.
	// TailOptions).
	Poll time.Duration

	// Sink receives watch.* lifecycle events and, for inline repairs,
	// the repair sessions' own pipeline events.
	Sink EventSink
	// Metrics records the sentinel_* families when set.
	Metrics *WatchMetrics
	// Options are session options for repair runs (search budget,
	// workers); the watcher adds the store/window/first-accepted
	// scoping itself.
	Options []Option

	// Launch starts one repair attempt. run blocks until the repair
	// finishes (it owns all bookkeeping — events, metrics, in-flight
	// accounting — even on error, so implementations only choose where
	// it executes: the daemon submits it to the jobs engine, the CLI
	// lets the default spawn a goroutine). An implementation that
	// cannot start the attempt must return an error WITHOUT running it;
	// the detection is then counted as suppressed.
	Launch func(d Detection, run func(ctx context.Context) (*Report, error)) error
}

// WatchStats is a point-in-time summary of a Watcher's work.
type WatchStats struct {
	// Entries, Windows, Detections, Debounced mirror the detector (see
	// sentinel.Stats).
	Entries    int64
	Windows    int64
	Detections int64
	Debounced  int64
	// SkippedSegments counts retention hops in the live tail.
	SkippedSegments int64
	// Suppressed counts detections not acted on (in-flight overlap,
	// concurrency bound, launcher refusal).
	Suppressed int64
	// Launched counts repair attempts started; Validated those that
	// produced an accepted (backtest-validated) repair; Unvalidated
	// completed attempts with no accepted repair; Failed attempts that
	// errored.
	Launched    int64
	Validated   int64
	Unvalidated int64
	Failed      int64
}

// Watcher is the self-healing loop: it tails a live trace store,
// evaluates the symptom over sliding windows online, and launches a
// first-accepted repair session scoped to each offending window. The
// proposed patch and its backtest verdict surface as sink events
// (watch.repair.done) — the loop never mutates the running program; it
// produces validated suggestions.
type Watcher struct {
	cfg  WatchConfig
	tail *tracestore.Tail

	mu       sync.Mutex
	stats    WatchStats
	inflight map[string]bool // window key of each running repair's predicate
	running  int
}

// NewWatcher validates the configuration and builds the loop.
func NewWatcher(cfg WatchConfig) (*Watcher, error) {
	if cfg.Store == nil || cfg.Program == nil || cfg.BuildNet == nil {
		return nil, errors.New("metarepair: watch needs Store, Program, and BuildNet")
	}
	if cfg.Symptom.Present == nil && cfg.Symptom.Goal.Table == "" {
		return nil, errors.New("metarepair: watch needs a symptom")
	}
	if cfg.Label == "" {
		cfg.Label = cfg.Scenario
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 1
	}
	// Fail fast on a non-derivable trigger or bad window shape: build a
	// throwaway detector now.
	if _, err := sentinel.NewDetector(
		sentinel.Config{Window: cfg.Window, Hop: cfg.Hop, Debounce: cfg.Debounce},
		cfg.predicate()); err != nil {
		return nil, err
	}
	return &Watcher{cfg: cfg, inflight: make(map[string]bool)}, nil
}

func (cfg WatchConfig) predicate() sentinel.Predicate {
	return sentinel.Predicate{
		Name:        cfg.Label,
		Goal:        cfg.Symptom.Goal,
		Present:     cfg.Symptom.Present,
		Trigger:     cfg.Trigger,
		MinTriggers: cfg.MinTriggers,
	}
}

// Stats returns current counters; safe to call concurrently with Run.
func (w *Watcher) Stats() WatchStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := w.stats
	if w.tail != nil {
		st.SkippedSegments = w.tail.Skipped()
	}
	return st
}

// Run follows the store until ctx is cancelled or the store closes,
// monitoring and launching repairs. It returns ctx.Err() on
// cancellation, nil when the stream ended cleanly. Repairs still in
// flight when Run returns finish on their own goroutines (or wherever
// Launch put them); Run does not wait for them.
func (w *Watcher) Run(ctx context.Context) error {
	det, err := sentinel.NewDetector(
		sentinel.Config{Window: w.cfg.Window, Hop: w.cfg.Hop, Debounce: w.cfg.Debounce},
		w.cfg.predicate())
	if err != nil {
		return err
	}
	mon, err := sentinel.NewMonitor(w.cfg.Program, w.cfg.BuildNet(), w.cfg.State, det)
	if err != nil {
		return err
	}
	w.mu.Lock()
	w.tail = w.cfg.Store.Tail(tracestore.TailOptions{Poll: w.cfg.Poll})
	tail := w.tail
	w.mu.Unlock()

	w.emit(Event{Kind: "watch.start", Symptom: w.cfg.Symptom.String(),
		Size: int(det.Config().Window), Dir: w.cfg.Store.Dir()})
	ferr := tail.Follow(ctx, func(e trace.Entry) error {
		for _, d := range mon.Feed(e) {
			w.onDetection(ctx, d)
		}
		w.syncStats(det)
		return nil
	})
	for _, d := range mon.Flush() {
		w.onDetection(ctx, d)
	}
	w.syncStats(det)
	st := w.Stats()
	w.emit(Event{Kind: "watch.stop", Entries: st.Entries, Candidates: int(st.Detections)})
	return ferr
}

// syncStats mirrors detector counters into the watcher (the detector
// itself is confined to the follow goroutine) and feeds the metrics.
func (w *Watcher) syncStats(det *sentinel.Detector) {
	ds := det.Stats()
	w.mu.Lock()
	dEntries := ds.Entries - w.stats.Entries
	dWindows := ds.Windows - w.stats.Windows
	w.stats.Entries = ds.Entries
	w.stats.Windows = ds.Windows
	w.stats.Detections = ds.Detections
	w.stats.Debounced = ds.Debounced
	w.mu.Unlock()
	if m := w.cfg.Metrics; m != nil {
		m.Entries.Add(dEntries)
		m.Windows.Add(dWindows)
	}
}

// onDetection applies the concurrency policy and launches a scoped
// repair for a flagged window.
func (w *Watcher) onDetection(ctx context.Context, sd sentinel.Detection) {
	d := Detection{
		Watch: w.cfg.Label, Scenario: w.cfg.Scenario, Kind: sd.Kind,
		From: sd.From, To: sd.To, Triggers: sd.Triggers, At: time.Now(),
	}
	if m := w.cfg.Metrics; m != nil {
		m.Detections.With(w.label()).Inc()
	}
	w.emit(Event{Kind: "watch.detect", Symptom: w.cfg.Symptom.String(),
		From: d.From, To: d.To, Triggers: d.Triggers})

	w.mu.Lock()
	var reason string
	switch {
	case w.inflight[w.cfg.Label]:
		reason = "in-flight"
	case w.running >= w.cfg.MaxConcurrent:
		reason = "concurrency"
	}
	if reason == "" {
		w.inflight[w.cfg.Label] = true
		w.running++
		w.stats.Launched++
	} else {
		w.stats.Suppressed++
	}
	w.mu.Unlock()
	if reason != "" {
		w.suppress(d, reason)
		return
	}

	run := func(rctx context.Context) (*Report, error) {
		rep, err := w.repair(rctx, d)
		w.finish(d, rep, err)
		return rep, err
	}
	launch := w.cfg.Launch
	if launch == nil {
		launch = func(_ Detection, run func(ctx context.Context) (*Report, error)) error {
			go run(ctx)
			return nil
		}
	}
	if err := launch(d, run); err != nil {
		w.mu.Lock()
		delete(w.inflight, w.cfg.Label)
		w.running--
		w.stats.Launched--
		w.stats.Suppressed++
		w.mu.Unlock()
		w.suppress(d, fmt.Sprintf("launch: %v", err))
	}
}

func (w *Watcher) suppress(d Detection, reason string) {
	if m := w.cfg.Metrics; m != nil {
		m.Suppressed.With(suppressClass(reason)).Inc()
	}
	w.emit(Event{Kind: "watch.suppressed", From: d.From, To: d.To, Desc: reason})
}

// suppressClass folds free-form launch errors into a bounded label.
func suppressClass(reason string) string {
	switch reason {
	case "in-flight", "concurrency":
		return reason
	}
	return "launch"
}

// repair runs one scoped first-accepted repair session: diagnose by
// replaying the offending window from the store, then explore and
// backtest against that same window.
func (w *Watcher) repair(ctx context.Context, d Detection) (*Report, error) {
	from, to := d.From-w.cfg.Lookback, d.To
	w.emit(Event{Kind: "watch.repair.start", From: from, To: to})

	opts := append([]Option(nil), w.cfg.Options...)
	opts = append(opts,
		WithTraceStore(w.cfg.Store),
		WithReplayWindow(from, to),
		WithPipelineMode(PipelineFirstAccepted),
	)
	if w.cfg.Sink != nil && w.cfg.Launch == nil {
		// Inline repairs share the watch event stream; launched ones
		// (daemon jobs) carry their own per-job logs.
		opts = append(opts, WithEventSink(w.cfg.Sink))
	}
	sess, err := NewSession(w.cfg.Program, opts...)
	if err != nil {
		return nil, err
	}
	// Diagnosis replay, scoped to the window: the session's engine and
	// recorder observe exactly the traffic that exhibited the symptom.
	net := w.cfg.BuildNet()
	ctl := sess.Controller()
	net.Ctrl = ctl
	for _, st := range w.cfg.State {
		ctl.InsertState(net, st)
	}
	view := w.cfg.Store.Source().Window(from, to)
	if _, err := trace.ReplaySource(net, view, 1); err != nil {
		return nil, fmt.Errorf("watch %s: diagnosis replay: %w", w.cfg.Label, err)
	}
	return sess.Repair(ctx, w.cfg.Symptom, Backtest{
		BuildNet:  w.cfg.BuildNet,
		State:     w.cfg.State,
		Effective: w.cfg.Effective,
	})
}

// finish records one repair attempt's outcome: events, metrics, and the
// in-flight bookkeeping.
func (w *Watcher) finish(d Detection, rep *Report, err error) {
	elapsed := time.Since(d.At)
	outcome := "failed"
	var accepted int
	var desc string
	var candidates int
	switch {
	case err != nil:
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			outcome = "cancelled"
		}
	case rep.Accepted > 0:
		outcome = "validated"
		accepted = rep.Accepted
		for _, s := range rep.Suggestions {
			if s.Result.Accepted {
				desc = s.Candidate.Describe()
				break
			}
		}
		candidates = len(rep.Candidates)
	default:
		outcome = "unvalidated"
		candidates = len(rep.Candidates)
	}

	w.mu.Lock()
	delete(w.inflight, w.cfg.Label)
	w.running--
	switch outcome {
	case "validated":
		w.stats.Validated++
	case "unvalidated":
		w.stats.Unvalidated++
	default:
		w.stats.Failed++
	}
	w.mu.Unlock()

	if m := w.cfg.Metrics; m != nil {
		m.Repairs.With(outcome).Inc()
		if outcome == "validated" {
			m.TimeToValidated.Observe(elapsed.Seconds())
		}
	}
	ev := Event{Kind: "watch.repair.done", From: d.From - w.cfg.Lookback, To: d.To,
		Candidates: candidates, Passed: accepted, Desc: desc,
		Accepted: outcome == "validated", Elapsed: float64(elapsed.Microseconds()) / 1e3}
	if err != nil {
		ev.Desc = err.Error()
	}
	w.emit(ev)
}

func (w *Watcher) label() string {
	if w.cfg.Scenario != "" {
		return w.cfg.Scenario
	}
	return w.cfg.Label
}

func (w *Watcher) emit(e Event) {
	if w.cfg.Sink == nil {
		return
	}
	e.Watch = w.cfg.Label
	if e.Scenario == "" {
		e.Scenario = w.cfg.Scenario
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	w.cfg.Sink.Emit(e)
}
