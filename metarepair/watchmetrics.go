package metarepair

import (
	"repro/internal/obsv"
)

// WatchMetrics aggregates self-healing loop telemetry into an
// obsv.Registry: the sentinel_* families. Label vocabularies are
// bounded — scenario names from the registry, a fixed suppression-
// reason set, a fixed outcome set — so cardinality is independent of
// stream length and watch count.
//
// The headline series is sentinel_time_to_validated_repair_seconds:
// wall-clock from online detection to a backtest-validated repair
// suggestion, the loop's SLO.
type WatchMetrics struct {
	// Entries counts stream entries fed through watch monitors.
	Entries *obsv.Counter
	// Windows counts predicate-windows evaluated.
	Windows *obsv.Counter
	// Detections counts flagged windows, by scenario.
	Detections *obsv.CounterVec
	// Suppressed counts detections not acted on, by reason
	// ("in-flight", "concurrency", "launch").
	Suppressed *obsv.CounterVec
	// Repairs counts completed auto-repair attempts, by outcome
	// ("validated", "unvalidated", "failed", "cancelled").
	Repairs *obsv.CounterVec
	// TimeToValidated is the detection→validated-repair latency
	// histogram (seconds).
	TimeToValidated *obsv.Histogram
	// Watches gauges currently-running watch loops (daemon-maintained).
	Watches *obsv.Gauge
}

// NewWatchMetrics registers the sentinel_* families on reg. Like
// NewMetricsSink, register once per registry and share across watches.
func NewWatchMetrics(reg *obsv.Registry) *WatchMetrics {
	return &WatchMetrics{
		Entries: reg.Counter("sentinel_entries_total",
			"Stream entries fed through watch-mode monitors."),
		Windows: reg.Counter("sentinel_windows_total",
			"Sliding windows evaluated by watch-mode detectors."),
		Detections: reg.CounterVec("sentinel_detections_total",
			"Symptomatic windows flagged online, by scenario.", "scenario"),
		Suppressed: reg.CounterVec("sentinel_suppressed_total",
			"Detections not acted on, by reason.", "reason"),
		Repairs: reg.CounterVec("sentinel_repairs_total",
			"Auto-repair attempts completed, by outcome.", "outcome"),
		TimeToValidated: reg.Histogram("sentinel_time_to_validated_repair_seconds",
			"Wall-clock from online detection to a backtest-validated repair suggestion.",
			nil),
		Watches: reg.Gauge("sentinel_watches",
			"Watch loops currently running."),
	}
}
