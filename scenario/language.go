package scenario

import (
	"context"
	"fmt"

	"repro/internal/meta"
	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/pyretic"
	"repro/internal/trema"
	"repro/metarepair"
)

// LangProgram is a controller program as seen through one of the three
// language front-ends (§5.8): its compiled NDlog semantics, rendered
// source, and the language's repair expressibility rules.
type LangProgram interface {
	Controller() *ndlog.Program
	Source() string
	LineCount() int
	AllowChange(meta.Change) bool
	Describe(meta.Change) string
	Name() string
}

// Language is one of the supported controller language front-ends.
type Language struct {
	Name      string
	Translate func(*ndlog.Program) (LangProgram, error)
	Supports  func(scenario string) bool
}

// ndlogProgram is the trivial adapter for the native dialect.
type ndlogProgram struct{ prog *ndlog.Program }

func (p ndlogProgram) Controller() *ndlog.Program    { return p.prog }
func (p ndlogProgram) Source() string                { return p.prog.String() }
func (p ndlogProgram) LineCount() int                { return p.prog.LineCount() }
func (p ndlogProgram) AllowChange(meta.Change) bool  { return true }
func (p ndlogProgram) Describe(c meta.Change) string { return c.String() }
func (p ndlogProgram) Name() string                  { return "RapidNet" }

// NDlogLang is the native declarative front-end (the paper's RapidNet).
func NDlogLang() Language {
	return Language{
		Name: "RapidNet",
		Translate: func(p *ndlog.Program) (LangProgram, error) {
			return ndlogProgram{prog: p}, nil
		},
		Supports: func(string) bool { return true },
	}
}

// TremaLang is the imperative front-end.
func TremaLang() Language {
	return Language{
		Name: "Trema",
		Translate: func(p *ndlog.Program) (LangProgram, error) {
			return trema.Translate(p)
		},
		Supports: func(string) bool { return true },
	}
}

// PyreticLang is the policy-DSL front-end. Q4 is not reproducible in
// Pyretic: its runtime forwards the buffered packet itself, so the
// forgotten-packets bug cannot be written (§5.8).
func PyreticLang() Language {
	return Language{
		Name: "Pyretic",
		Translate: func(p *ndlog.Program) (LangProgram, error) {
			return pyretic.Translate(p)
		},
		Supports: func(scenario string) bool { return scenario != "Q4" },
	}
}

// Languages returns all three front-ends in the paper's order.
func Languages() []Language {
	return []Language{NDlogLang(), TremaLang(), PyreticLang()}
}

// LanguageByName resolves a front-end by name; the error lists the
// supported languages.
func LanguageByName(name string) (Language, error) {
	var names []string
	for _, l := range Languages() {
		if l.Name == name {
			return l, nil
		}
		names = append(names, l.Name)
	}
	return Language{}, fmt.Errorf("scenario: unknown language %q (supported: %v)", name, names)
}

// LangOutcome extends Outcome with language-level bookkeeping.
type LangOutcome struct {
	*Outcome
	Language   string
	Filtered   int // candidates removed by expressibility rules
	Supported  bool
	SourceLOC  int
	Renderings []string // language-level candidate descriptions
}

// RunWithLanguage executes the pipeline with the scenario's controller
// expressed in the given language: candidates inexpressible in the
// language are filtered before backtesting via the session's candidate
// filter (the Table 3 experiment).
func (s *Scenario) RunWithLanguage(ctx context.Context, lang Language, extra ...metarepair.Option) (*LangOutcome, error) {
	if !lang.Supports(s.Name) {
		return &LangOutcome{
			Outcome:  &Outcome{Scenario: s},
			Language: lang.Name,
		}, nil
	}
	lp, err := lang.Translate(s.Prog)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: translate: %w", s.Name, lang.Name, err)
	}
	sess, replayTime, err := s.Diagnose(extra...)
	if err != nil {
		return nil, err
	}
	rep, err := sess.Repair(ctx, s.Symptom(), s.Backtest(),
		metarepair.WithCandidateFilter(func(c metaprov.Candidate) bool {
			for _, ch := range c.Changes {
				if !lp.AllowChange(ch) {
					return false
				}
			}
			return true
		}))
	if err != nil {
		return nil, err
	}

	out := &LangOutcome{
		Outcome:   s.outcome(sess, rep, replayTime),
		Language:  lang.Name,
		Filtered:  rep.Filtered,
		Supported: true,
		SourceLOC: lp.LineCount(),
	}
	for _, r := range rep.Results {
		desc := ""
		for i, ch := range r.Candidate.Changes {
			if i > 0 {
				desc += "; "
			}
			desc += lp.Describe(ch)
		}
		out.Renderings = append(out.Renderings, desc)
	}
	return out, nil
}
