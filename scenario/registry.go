package scenario

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry maps scenario names to specs. It is safe for concurrent use;
// the zero value is not ready — use NewRegistry. Most callers use the
// package-level default registry, which the built-in case studies
// (internal/scenarios) populate on import.
type Registry struct {
	mu    sync.RWMutex
	specs map[string]Spec
	order []string // registration order, for stable listings
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{specs: make(map[string]Spec)}
}

// Register validates the spec and adds it under its name. Registering a
// duplicate name is an error — specs are identities, not overrides.
func (r *Registry) Register(s Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.specs[s.Name]; dup {
		return fmt.Errorf("scenario: %q is already registered", s.Name)
	}
	r.specs[s.Name] = s
	r.order = append(r.order, s.Name)
	return nil
}

// MustRegister is Register for init-time registration; it panics on
// error.
func (r *Registry) MustRegister(s Spec) {
	if err := r.Register(s); err != nil {
		panic(err)
	}
}

// Lookup returns the spec registered under name. An unknown name is a
// descriptive error that lists every registered scenario, so a CLI typo
// surfaces the menu instead of a nil dereference.
func (r *Registry) Lookup(name string) (Spec, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if s, ok := r.specs[name]; ok {
		return s, nil
	}
	if len(r.order) == 0 {
		return Spec{}, fmt.Errorf("scenario: unknown scenario %q (none registered)", name)
	}
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	return Spec{}, fmt.Errorf("scenario: unknown scenario %q (registered: %s)",
		name, strings.Join(names, ", "))
}

// Names returns the registered scenario names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Specs returns the registered specs in registration order.
func (r *Registry) Specs() []Spec {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Spec, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.specs[name])
	}
	return out
}

// Instantiate looks a spec up by name and resolves it at the scale.
func (r *Registry) Instantiate(name string, sc Scale) (*Scenario, error) {
	spec, err := r.Lookup(name)
	if err != nil {
		return nil, err
	}
	return spec.Instantiate(sc)
}

// defaultRegistry backs the package-level registration surface.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the package-level functions
// operate on.
func Default() *Registry { return defaultRegistry }

// Register adds a spec to the default registry.
func Register(s Spec) error { return defaultRegistry.Register(s) }

// MustRegister adds a spec to the default registry, panicking on error —
// the idiom for init-time registration.
func MustRegister(s Spec) { defaultRegistry.MustRegister(s) }

// Lookup resolves a name against the default registry.
func Lookup(name string) (Spec, error) { return defaultRegistry.Lookup(name) }

// Names lists the default registry in registration order.
func Names() []string { return defaultRegistry.Names() }

// Instantiate resolves a named spec from the default registry at the
// scale.
func Instantiate(name string, sc Scale) (*Scenario, error) {
	return defaultRegistry.Instantiate(name, sc)
}
