package scenario

import (
	"strings"
	"testing"

	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/topo"
	"repro/internal/trace"
)

// validSpec returns a minimal spec that passes validation (it is not
// meant to run).
func validSpec(name string) Spec {
	return Spec{
		Name: name,
		Program: func(*topo.Fabric) (*ndlog.Program, []ndlog.Tuple, error) {
			p, err := ndlog.Parse(name, `r1 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Prt := 2.`)
			return p, nil, err
		},
		Workload: func(*topo.Fabric, Scale) []trace.Entry { return nil },
		Goal:     func(*topo.Fabric) metaprov.Goal { return metaprov.Goal{} },
		Oracle:   func(*topo.Fabric) Effectiveness { return nil },
	}
}

func TestRegistryRegisterAndLookup(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(validSpec("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(validSpec("beta")); err != nil {
		t.Fatal(err)
	}
	got, err := r.Lookup("alpha")
	if err != nil || got.Name != "alpha" {
		t.Fatalf("Lookup(alpha) = %q, %v", got.Name, err)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("Names() = %v, want registration order", names)
	}
	specs := r.Specs()
	if len(specs) != 2 || specs[0].Name != "alpha" {
		t.Fatalf("Specs() broken: %d entries", len(specs))
	}
}

func TestRegistryDuplicate(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(validSpec("dup")); err != nil {
		t.Fatal(err)
	}
	err := r.Register(validSpec("dup"))
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate registration error = %v", err)
	}
}

func TestRegistryUnknownLookupListsNames(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(validSpec("alpha"))
	r.MustRegister(validSpec("beta"))
	_, err := r.Lookup("gamma")
	if err == nil {
		t.Fatal("unknown lookup must error")
	}
	for _, want := range []string{`"gamma"`, "alpha", "beta"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
	// Empty registry: still a descriptive error, no panic.
	if _, err := NewRegistry().Lookup("x"); err == nil || !strings.Contains(err.Error(), "none registered") {
		t.Fatalf("empty-registry error = %v", err)
	}
}

func TestSpecValidation(t *testing.T) {
	s := validSpec("ok")
	if err := s.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	missingGoal := validSpec("no-goal")
	missingGoal.Goal = nil
	err := missingGoal.Validate()
	if err == nil || !strings.Contains(err.Error(), "Goal") {
		t.Fatalf("missing Goal error = %v", err)
	}
	missingOracle := validSpec("no-oracle")
	missingOracle.Oracle = nil
	err = missingOracle.Validate()
	if err == nil || !strings.Contains(err.Error(), "Oracle") {
		t.Fatalf("missing Oracle error = %v", err)
	}
	// All missing: every field named at once.
	err = Spec{}.Validate()
	if err == nil {
		t.Fatal("empty spec must fail validation")
	}
	for _, want := range []string{"Name", "Program", "Workload", "Goal", "Oracle"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("empty-spec error %q missing %q", err, want)
		}
	}
	// Registration enforces validation too.
	if err := NewRegistry().Register(Spec{Name: "partial"}); err == nil {
		t.Fatal("Register must reject invalid specs")
	}
	// Instantiate surfaces validation errors instead of panicking.
	if _, err := missingGoal.Instantiate(DefaultScale()); err == nil {
		t.Fatal("Instantiate must reject invalid specs")
	}
}

func TestRegistryInstantiateUnknown(t *testing.T) {
	if _, err := NewRegistry().Instantiate("nope", DefaultScale()); err == nil {
		t.Fatal("Instantiate of unknown scenario must error")
	}
}
