// Package scenario is the public declarative scenario surface of the
// debugger: a Spec describes a diagnostic case study — a buggy controller
// program, a topology generator, a workload generator, a symptom goal,
// and an effectiveness oracle — and a Registry makes specs addressable by
// name, so third-party packages define scenarios exactly the way the
// built-in §5.3 case studies (Q1–Q5, package internal/scenarios) do.
//
// A Spec is instantiated at a Scale into a runnable Scenario, which
// executes the full diagnose → generate → backtest pipeline through the
// metarepair.Session API. The Suite runner evaluates scenario × scale
// matrices concurrently on a worker pool, streaming per-cell progress
// through the metarepair event-sink machinery and aggregating a
// Figure 9-style matrix report.
//
// Defining a scenario:
//
//	spec := scenario.Spec{
//	    Name:     "my-bug",
//	    Topology: topo.Linear{},                   // any topo.Generator
//	    Attach:   func(f *topo.Fabric) { ... },    // wire the reactive zone
//	    Program:  func(f *topo.Fabric) (*ndlog.Program, []ndlog.Tuple, error) { ... },
//	    Workload: func(f *topo.Fabric, sc scenario.Scale) []trace.Entry { ... },
//	    Goal:     func(f *topo.Fabric) metaprov.Goal { ... },
//	    Oracle:   func(f *topo.Fabric) scenario.Effectiveness { ... },
//	}
//	scenario.MustRegister(spec)
//	s, err := scenario.Instantiate("my-bug", scenario.DefaultScale())
//	out, err := s.Run(ctx)
package scenario

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/backtest"
	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/sdn"
	"repro/internal/trace"
	"repro/metarepair"
)

// Scale sizes a scenario instance: the topology's switch budget (19
// reproduces the paper's base campus; up to 169 for Figure 9c) and the
// workload volume.
type Scale struct {
	Switches int
	Flows    int
}

// DefaultScale is the base evaluation setting.
func DefaultScale() Scale { return Scale{Switches: 19, Flows: 900} }

// String labels the scale in reports and event logs.
func (sc Scale) String() string { return fmt.Sprintf("%dsw/%dfl", sc.Switches, sc.Flows) }

// Timing is the Figure 9a turnaround breakdown.
type Timing = metarepair.Timing

// Effectiveness judges whether the symptom is fixed for a tag in a
// replayed network — the per-candidate oracle of §4.3.
type Effectiveness = func(net *sdn.Network, ctl *sdn.NDlogController, tag int) bool

// Scenario is one runnable diagnostic case study, produced by
// Spec.Instantiate. Its fields are the fully resolved pipeline inputs;
// experiments may mutate them (e.g. swapping Prog for a scaled program or
// Source for a trace-store view) before Run.
type Scenario struct {
	Name  string
	Query string
	// Scale is the instantiation scale; Topology names the generated
	// shape. Both are informational (reports, event labels).
	Scale    Scale
	Topology string

	Prog  *ndlog.Program
	State []ndlog.Tuple

	// BuildNet constructs the topology with proactive routes installed
	// and the reactive zone wired (no controller). It must be
	// deterministic and safe to call concurrently: backtesting builds one
	// network per in-flight batch.
	BuildNet func() *sdn.Network
	// Workload is the recorded traffic, generated in memory.
	Workload []trace.Entry
	// Source, when set, streams the recorded traffic instead — e.g. a
	// tracestore view replaying a captured log — so scenario runs never
	// materialize the workload. Takes precedence over Workload.
	Source trace.Source
	// Goal is the missing-tuple symptom (negative symptoms; all five
	// built-in case studies are phrased this way, as in Table 1).
	Goal metaprov.Goal
	// Effective checks whether the symptom is fixed under a tag.
	Effective Effectiveness
	// IntuitiveFix is a substring of the repair a human operator would
	// choose; it must be generated and accepted.
	IntuitiveFix string
	// Options are the scenario's session options (search budget, candidate
	// cap), matching the paper's per-query cost bounds.
	Options []metarepair.Option
	// MaxPacketInFactor enables the controller-load metric (Q4).
	MaxPacketInFactor float64
}

// Outcome is one end-to-end run: diagnose → generate → backtest.
type Outcome struct {
	Scenario   *Scenario
	Session    *metarepair.Session
	Report     *metarepair.Report
	Candidates []metaprov.Candidate
	Results    []backtest.Result
	Generated  int
	Passed     int
	Timing     Timing
}

// IntuitiveFixAccepted reports whether the scenario's intuitive fix was
// generated and survived backtesting; scenarios that do not declare one
// trivially pass.
func (o *Outcome) IntuitiveFixAccepted() bool {
	if o.Scenario == nil || o.Scenario.IntuitiveFix == "" {
		return true
	}
	for _, r := range o.Results {
		if r.Accepted && strings.Contains(r.Candidate.Describe(), o.Scenario.IntuitiveFix) {
			return true
		}
	}
	return false
}

// sessionOptions merges scenario tuning with per-call extras.
func (s *Scenario) sessionOptions(extra []metarepair.Option) []metarepair.Option {
	opts := append([]metarepair.Option{}, s.Options...)
	if s.MaxPacketInFactor > 0 {
		opts = append(opts, metarepair.WithMaxPacketInFactor(s.MaxPacketInFactor))
	}
	return append(opts, extra...)
}

// Diagnose replays the workload through the buggy program inside a fresh
// repair session, recording provenance — the run in which the operator
// observes the symptom. The returned session holds the history every
// later pipeline stage consumes.
func (s *Scenario) Diagnose(extra ...metarepair.Option) (*metarepair.Session, time.Duration, error) {
	start := time.Now()
	sess, err := metarepair.NewSession(s.Prog, s.sessionOptions(extra)...)
	if err != nil {
		return nil, 0, err
	}
	net := s.BuildNet()
	ctl := sess.Controller()
	net.Ctrl = ctl
	for _, st := range s.State {
		ctl.InsertState(net, st)
	}
	n, err := trace.ReplaySource(net, s.workloadSource(), 1)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: replaying workload: %w", s.Name, err)
	}
	if s.Source == nil && n != len(s.Workload) {
		return nil, 0, fmt.Errorf("%s: partial replay: %d of %d entries", s.Name, n, len(s.Workload))
	}
	if s.Effective != nil && s.Effective(net, ctl, 0) {
		return nil, 0, fmt.Errorf("%s: bug not reproduced — symptom absent in buggy run", s.Name)
	}
	return sess, time.Since(start), nil
}

// Symptom is the scenario's diagnostic query as a pipeline symptom.
func (s *Scenario) Symptom() metarepair.Symptom {
	return metarepair.Symptom{Goal: s.Goal}
}

// workloadSource streams the scenario's traffic: a captured store view
// when set, otherwise the generated in-memory slice.
func (s *Scenario) workloadSource() trace.Source {
	if s.Source != nil {
		return s.Source
	}
	return trace.SliceSource(s.Workload)
}

// Backtest is the scenario's historical evidence for candidate
// evaluation. The workload is handed over as a stream, so store-backed
// scenarios backtest in O(segment) memory.
func (s *Scenario) Backtest() metarepair.Backtest {
	return metarepair.Backtest{
		BuildNet:  s.BuildNet,
		State:     s.State,
		Workload:  s.Workload,
		Source:    s.workloadSource(),
		Effective: s.Effective,
	}
}

// Run executes the full pipeline and collects the Figure 9a breakdown.
func (s *Scenario) Run(ctx context.Context, extra ...metarepair.Option) (*Outcome, error) {
	sess, replayTime, err := s.Diagnose(extra...)
	if err != nil {
		return nil, err
	}
	rep, err := sess.Repair(ctx, s.Symptom(), s.Backtest())
	if err != nil {
		return nil, err
	}
	return s.outcome(sess, rep, replayTime), nil
}

// outcome folds a report and the diagnostic replay time into the
// scenario-level view.
func (s *Scenario) outcome(sess *metarepair.Session, rep *metarepair.Report, replayTime time.Duration) *Outcome {
	t := rep.Timing
	t.Replay += replayTime
	return &Outcome{
		Scenario:   s,
		Session:    sess,
		Report:     rep,
		Candidates: rep.Candidates,
		Results:    rep.Results,
		Generated:  len(rep.Candidates),
		Passed:     rep.Accepted,
		Timing:     t,
	}
}
