package scenario

import (
	"fmt"
	"strings"

	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/sdn"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/metarepair"
)

// Spec declares a scenario: which topology to generate, how to wire the
// scenario's reactive zone onto it, the buggy controller program, the
// recorded workload, the operator's symptom, and the oracle that judges
// repairs. A Spec is pure description — Instantiate resolves it at a
// Scale into a runnable Scenario.
//
// The resolver functions all receive the generated fabric, because in
// practice every piece of a scenario depends on the concrete topology:
// thresholds are computed from host IPs, workloads from host lists, and
// goals from both. Generation is deterministic, so the reference fabric
// each resolver sees is identical to every fabric BuildNet later
// constructs for backtesting.
type Spec struct {
	// Name registers the scenario; Query is the operator's diagnostic
	// question (Table 1 style).
	Name  string
	Query string

	// Topology generates the base fabric (nil: the §5.2 campus). Any
	// topo.Generator works — the built-in shapes are topo.Campus,
	// topo.FatTree, and topo.Linear.
	Topology topo.Generator

	// Attach wires the scenario onto a freshly generated fabric: zone
	// switches and hosts, links into the fabric, and proactive routes
	// with overrides. It runs for every network rebuild, so it must be
	// deterministic. Optional — a spec whose program manages the fabric
	// itself may omit it (install proactive routes here if so).
	Attach func(f *topo.Fabric)

	// Program resolves the buggy controller program and its initial
	// controller state (policy tables) against the fabric. Required.
	Program func(f *topo.Fabric) (*ndlog.Program, []ndlog.Tuple, error)

	// Workload generates the recorded traffic the symptom hides in.
	// Required.
	Workload func(f *topo.Fabric, sc Scale) []trace.Entry

	// Goal resolves the missing-tuple symptom (Table 1). Required.
	Goal func(f *topo.Fabric) metaprov.Goal

	// Oracle resolves the effectiveness predicate evaluated against each
	// replayed network. Required.
	Oracle func(f *topo.Fabric) Effectiveness

	// IntuitiveFix is a substring of the repair a human operator would
	// choose; the built-in tests assert it is generated and accepted.
	// Optional.
	IntuitiveFix string

	// Options are the scenario's session defaults (search budget,
	// candidate cap). Optional.
	Options []metarepair.Option

	// MaxPacketInFactor enables the controller-load side-effect metric
	// (the Q4 rejection criterion). Optional.
	MaxPacketInFactor float64
}

// Validate reports every missing required field at once, so a spec
// author sees the full repair list on the first attempt.
func (s Spec) Validate() error {
	var missing []string
	if s.Name == "" {
		missing = append(missing, "Name")
	}
	if s.Program == nil {
		missing = append(missing, "Program")
	}
	if s.Workload == nil {
		missing = append(missing, "Workload")
	}
	if s.Goal == nil {
		missing = append(missing, "Goal")
	}
	if s.Oracle == nil {
		missing = append(missing, "Oracle")
	}
	if len(missing) > 0 {
		name := s.Name
		if name == "" {
			name = "(unnamed)"
		}
		return fmt.Errorf("scenario: spec %s is missing required fields: %s",
			name, strings.Join(missing, ", "))
	}
	return nil
}

// Instantiate resolves the spec at a scale into a runnable Scenario: it
// generates the reference fabric, resolves the program, workload, goal,
// and oracle against it, and wires a deterministic BuildNet for
// backtesting. Zero scale fields fall back to DefaultScale.
func (s Spec) Instantiate(sc Scale) (*Scenario, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if sc.Switches <= 0 {
		sc.Switches = DefaultScale().Switches
	}
	if sc.Flows <= 0 {
		sc.Flows = DefaultScale().Flows
	}
	gen := s.Topology
	if gen == nil {
		gen = topo.Campus{}
	}
	build := func() *topo.Fabric {
		f := gen.Generate(topo.Size{Switches: sc.Switches})
		if s.Attach != nil {
			s.Attach(f)
		}
		return f
	}
	ref := build()
	prog, state, err := s.Program(ref)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: resolving program: %w", s.Name, err)
	}
	if prog == nil {
		return nil, fmt.Errorf("scenario %s: Program resolved to nil", s.Name)
	}
	return &Scenario{
		Name:              s.Name,
		Query:             s.Query,
		Scale:             sc,
		Topology:          gen.Name(),
		Prog:              prog,
		State:             state,
		BuildNet:          func() *sdn.Network { return build().Net },
		Workload:          s.Workload(ref, sc),
		Goal:              s.Goal(ref),
		Effective:         s.Oracle(ref),
		IntuitiveFix:      s.IntuitiveFix,
		Options:           s.Options,
		MaxPacketInFactor: s.MaxPacketInFactor,
	}, nil
}

// MustInstantiate is Instantiate for specs known to be valid (the
// built-in case studies); it panics on error.
func (s Spec) MustInstantiate(sc Scale) *Scenario {
	out, err := s.Instantiate(sc)
	if err != nil {
		panic(err)
	}
	return out
}
