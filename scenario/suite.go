package scenario

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/metarepair"
)

// Cell identifies one scenario × scale pair in a suite matrix.
type Cell struct {
	Scenario string
	Scale    Scale
}

// String labels the cell in errors and event logs.
func (c Cell) String() string { return c.Scenario + "@" + c.Scale.String() }

// CellResult is the outcome of one cell: the end-to-end Outcome on
// success, the error otherwise.
type CellResult struct {
	Cell
	Topology string
	Outcome  *Outcome
	Err      error
	Elapsed  time.Duration
}

// Verdicts returns the per-candidate accepted flags in cost order —
// the comparison key for parallel-vs-sequential parity checks.
func (c *CellResult) Verdicts() []bool {
	if c.Outcome == nil {
		return nil
	}
	out := make([]bool, len(c.Outcome.Results))
	for i, r := range c.Outcome.Results {
		out[i] = r.Accepted
	}
	return out
}

// Suite runs a scenario × scale matrix concurrently on a worker pool.
// Each cell is one full diagnose → generate → backtest pipeline; cells
// are independent, so the pool evaluates them in parallel while the
// per-cell results stay identical to sequential Scenario.Run.
type Suite struct {
	// Registry resolves scenario names (nil: the default registry).
	Registry *Registry
	// Scenarios are the names to run (empty: every registered scenario).
	Scenarios []string
	// Scales are the matrix columns (empty: DefaultScale only).
	Scales []Scale
	// Parallel is the worker-pool width (<= 0: GOMAXPROCS).
	Parallel int
	// Options are extra session options applied to every cell.
	Options []metarepair.Option
	// Sink receives suite progress (suite.start, cell.start, cell.done,
	// suite.done) and every event a cell's pipeline emits, each stamped
	// with the cell's Scenario and Scale labels.
	Sink metarepair.EventSink
}

// Matrix is the aggregate suite report: every cell result, row-major in
// the order (scenario, scale).
type Matrix struct {
	Scenarios []string
	Scales    []Scale
	Cells     []CellResult
	Elapsed   time.Duration
}

// At returns the cell result for a scenario name and scale, or nil.
func (m *Matrix) At(name string, sc Scale) *CellResult {
	for i := range m.Cells {
		if m.Cells[i].Scenario == name && m.Cells[i].Scale == sc {
			return &m.Cells[i]
		}
	}
	return nil
}

// Err returns the first cell error in matrix order, wrapped with its
// cell label, or nil when every cell completed.
func (m *Matrix) Err() error {
	for i := range m.Cells {
		if m.Cells[i].Err != nil {
			return fmt.Errorf("%s: %w", m.Cells[i].Cell, m.Cells[i].Err)
		}
	}
	return nil
}

// Render formats the Figure 9-style aggregate: one row per scenario, one
// column per scale, each cell showing generated/accepted candidates, the
// intuitive-fix verdict, and turnaround.
func (m *Matrix) Render() string {
	var b strings.Builder
	b.WriteString("Suite matrix: generated/accepted [intuitive fix] (turnaround)\n")
	fmt.Fprintf(&b, "  %-12s", "scenario")
	for _, sc := range m.Scales {
		fmt.Fprintf(&b, " %-24s", sc)
	}
	b.WriteByte('\n')
	for _, name := range m.Scenarios {
		fmt.Fprintf(&b, "  %-12s", name)
		for _, sc := range m.Scales {
			cell := m.At(name, sc)
			switch {
			case cell == nil:
				fmt.Fprintf(&b, " %-24s", "-")
			case cell.Err != nil:
				fmt.Fprintf(&b, " %-24s", "ERROR")
			default:
				fix := "fix:ok"
				if !cell.Outcome.IntuitiveFixAccepted() {
					fix = "fix:MISSING"
				}
				fmt.Fprintf(&b, " %-24s", fmt.Sprintf("%d/%d %s (%v)",
					cell.Outcome.Generated, cell.Outcome.Passed, fix,
					cell.Elapsed.Round(time.Millisecond)))
			}
		}
		b.WriteByte('\n')
	}
	if err := m.Err(); err != nil {
		fmt.Fprintf(&b, "  first error: %v\n", err)
	}
	return b.String()
}

// cellSink stamps a cell's identity onto every event its pipeline emits,
// so concurrent cells share one sink without losing attribution.
type cellSink struct {
	cell  Cell
	inner metarepair.EventSink
}

func (cs cellSink) Emit(e metarepair.Event) {
	e.Scenario = cs.cell.Scenario
	e.Scale = cs.cell.Scale.String()
	cs.inner.Emit(e)
}

// Run executes the matrix and returns the aggregate report. Name
// resolution happens before any work starts, so a typo fails fast with
// the registry's descriptive error. Per-cell pipeline errors do not
// abort the suite — they land in the matrix (see Matrix.Err); Run itself
// errors only on configuration problems or context cancellation.
func (s *Suite) Run(ctx context.Context) (*Matrix, error) {
	reg := s.Registry
	if reg == nil {
		reg = Default()
	}
	names := s.Scenarios
	if len(names) == 0 {
		names = reg.Names()
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("scenario: suite has no scenarios (none registered)")
	}
	specs := make([]Spec, len(names))
	for i, name := range names {
		spec, err := reg.Lookup(name)
		if err != nil {
			return nil, err
		}
		specs[i] = spec
	}
	scales := s.Scales
	if len(scales) == 0 {
		scales = []Scale{DefaultScale()}
	}
	parallel := s.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}

	m := &Matrix{
		Scenarios: append([]string(nil), names...),
		Scales:    append([]Scale(nil), scales...),
		Cells:     make([]CellResult, 0, len(names)*len(scales)),
	}
	for i, name := range names {
		for _, sc := range scales {
			m.Cells = append(m.Cells, CellResult{
				Cell:     Cell{Scenario: name, Scale: sc},
				Topology: topologyName(specs[i]),
			})
		}
	}
	if parallel > len(m.Cells) {
		parallel = len(m.Cells)
	}

	emit := func(e metarepair.Event) {
		if s.Sink != nil {
			e.Time = time.Now()
			s.Sink.Emit(e)
		}
	}
	start := time.Now()
	emit(metarepair.Event{Kind: "suite.start", Candidates: len(m.Cells), Parallelism: parallel})

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				cell := &m.Cells[idx]
				if err := ctx.Err(); err != nil {
					cell.Err = err
					continue
				}
				s.runCell(ctx, specAt(specs, names, cell.Scenario), cell, emit)
			}
		}()
	}
	for idx := range m.Cells {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	m.Elapsed = time.Since(start)
	ok := 0
	for i := range m.Cells {
		if m.Cells[i].Err == nil {
			ok++
		}
	}
	emit(metarepair.Event{Kind: "suite.done", Candidates: len(m.Cells), Passed: ok,
		Elapsed: float64(m.Elapsed) / float64(time.Millisecond)})
	if err := ctx.Err(); err != nil {
		return m, err
	}
	return m, nil
}

// runCell executes one cell's pipeline and records its result.
func (s *Suite) runCell(ctx context.Context, spec Spec, cell *CellResult, emit func(metarepair.Event)) {
	start := time.Now()
	emit(metarepair.Event{Kind: "cell.start", Scenario: cell.Scenario, Scale: cell.Scale.String()})
	opts := append([]metarepair.Option(nil), s.Options...)
	if s.Sink != nil {
		opts = append(opts, metarepair.WithEventSink(cellSink{cell: cell.Cell, inner: s.Sink}))
	}
	inst, err := spec.Instantiate(cell.Scale)
	if err == nil {
		cell.Outcome, err = inst.Run(ctx, opts...)
	}
	cell.Err = err
	cell.Elapsed = time.Since(start)
	done := metarepair.Event{Kind: "cell.done", Scenario: cell.Scenario, Scale: cell.Scale.String(),
		Elapsed: float64(cell.Elapsed) / float64(time.Millisecond)}
	if cell.Outcome != nil {
		done.Candidates = cell.Outcome.Generated
		done.Passed = cell.Outcome.Passed
		done.Accepted = cell.Outcome.IntuitiveFixAccepted()
	}
	emit(done)
}

// topologyName resolves a spec's shape label without instantiating it.
func topologyName(s Spec) string {
	if s.Topology == nil {
		return "campus"
	}
	return s.Topology.Name()
}

// specAt finds the spec for a cell's scenario name.
func specAt(specs []Spec, names []string, name string) Spec {
	for i, n := range names {
		if n == name {
			return specs[i]
		}
	}
	return Spec{} // unreachable: cells are built from names
}
