package scenario

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/sdn"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/metarepair"
)

// tinyLBSpec is a fast end-to-end scenario for suite tests: a Q1-style
// copy-and-paste load-balancer bug in a reactive zone hanging off a
// linear chain. Small enough that a cell runs in well under a second.
func tinyLBSpec() Spec {
	const vip, backup = 601, 602
	prog := `
materialize(FlowTable, 1, 6, keys(0,1,2,3,4)).
r1 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dpt == 80, Sip < %T%, Prt := 2.
r2 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dpt == 80, Sip >= %T%, Prt := 3.
r5 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 2, Dpt == 80, Prt := 1.
r7 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 2, Dpt == 80, Prt := 2.
`
	thresh := func(f *topo.Fabric) int64 {
		return f.Net.Hosts[f.HostIDs[0]].IP + int64(3*len(f.HostIDs)/4)
	}
	return Spec{
		Name:     "tiny-lb",
		Query:    "backup server starves behind a copied switch guard",
		Topology: topo.Linear{HostsPerSwitch: 2},
		Attach: func(f *topo.Fabric) {
			gw, srv, bak := sdn.NewSwitch("gw", 1), sdn.NewSwitch("srv", 2), sdn.NewSwitch("bak", 3)
			f.Net.AddSwitch(gw)
			f.Net.AddSwitch(srv)
			f.Net.AddSwitch(bak)
			gw.Wire(2, "srv")
			srv.Wire(3, "gw")
			gw.Wire(3, "bak")
			bak.Wire(3, "gw")
			f.Net.AddHostAt(sdn.NewHost("vip", vip, "srv"), 1)
			f.Net.AddHostAt(sdn.NewHost("backup", backup, "bak"), 2)
			f.Net.Link("gw", f.CoreIDs[0])
			f.InstallProactiveRoutes(map[int64]string{vip: "gw", backup: "gw"}, "gw", "srv", "bak")
		},
		Program: func(f *topo.Fabric) (*ndlog.Program, []ndlog.Tuple, error) {
			p, err := ndlog.Parse("tiny-lb", strings.ReplaceAll(prog, "%T%", fmt.Sprint(thresh(f))))
			return p, nil, err
		},
		Workload: func(f *topo.Fabric, sc Scale) []trace.Entry {
			t := thresh(f)
			var offloaded, everyone []trace.HostSpec
			for _, id := range f.HostIDs {
				hs := trace.HostSpec{ID: id, IP: f.Net.Hosts[id].IP}
				everyone = append(everyone, hs)
				if hs.IP >= t {
					offloaded = append(offloaded, hs)
				}
			}
			symptom := trace.Generate(trace.Config{
				Seed:     11,
				Sources:  offloaded,
				Services: []trace.Service{{DstIP: vip, Port: sdn.PortHTTP, Proto: sdn.ProtoTCP, Weight: 1}},
				Flows:    6,
			})
			bg := trace.Generate(trace.Config{
				Seed:     12,
				Sources:  everyone,
				Services: []trace.Service{{DstIP: vip, Port: sdn.PortHTTP, Proto: sdn.ProtoTCP, Weight: 1}},
				Flows:    sc.Flows,
			})
			return append(symptom, bg...)
		},
		Goal: func(*topo.Fabric) metaprov.Goal {
			v3, v80, v2 := ndlog.Int(3), ndlog.Int(80), ndlog.Int(2)
			return metaprov.PinnedGoal("FlowTable", &v3, nil, nil, nil, &v80, &v2)
		},
		Oracle: func(*topo.Fabric) Effectiveness {
			return func(n *sdn.Network, _ *sdn.NDlogController, tag int) bool {
				return n.Hosts["backup"].PortCountFor(sdn.PortHTTP, tag) > 0
			}
		},
		IntuitiveFix: "change constant 2 in r7 (sel/0/R) to 3",
		Options: []metarepair.Option{
			metarepair.WithBudget(metarepair.Budget{CostCutoff: 3.2, MaxPerStructure: 2}),
			metarepair.WithMaxCandidates(13),
		},
	}
}

// collectSink is a concurrency-safe event collector.
type collectSink struct {
	mu     sync.Mutex
	events []metarepair.Event
}

func (c *collectSink) Emit(e metarepair.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
}

func (c *collectSink) kinds() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := map[string]int{}
	for _, e := range c.events {
		out[e.Kind]++
	}
	return out
}

func TestSuiteRunsMatrixConcurrently(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(tinyLBSpec())
	scales := []Scale{{Switches: 3, Flows: 60}, {Switches: 4, Flows: 80}}
	sink := &collectSink{}
	suite := &Suite{Registry: reg, Scales: scales, Parallel: 4, Sink: sink}
	m, err := suite.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(m.Cells))
	}
	for _, sc := range scales {
		cell := m.At("tiny-lb", sc)
		if cell == nil || cell.Outcome == nil {
			t.Fatalf("missing cell for %v", sc)
		}
		if cell.Outcome.Generated == 0 {
			t.Fatalf("%v: no candidates", sc)
		}
		if cell.Topology != "linear" {
			t.Fatalf("%v: topology = %q", sc, cell.Topology)
		}
	}
	kinds := sink.kinds()
	for _, want := range []string{"suite.start", "cell.start", "cell.done", "suite.done", "explore.done", "report"} {
		if kinds[want] == 0 {
			t.Fatalf("no %s events (got %v)", want, kinds)
		}
	}
	if kinds["cell.done"] != 2 {
		t.Fatalf("cell.done = %d, want 2", kinds["cell.done"])
	}
	// Pipeline events inside a cell must carry the cell's labels.
	for _, e := range sink.events {
		if e.Kind == "explore.done" && (e.Scenario != "tiny-lb" || e.Scale == "") {
			t.Fatalf("unlabelled cell event: %+v", e)
		}
	}
	rendered := m.Render()
	if !strings.Contains(rendered, "tiny-lb") || !strings.Contains(rendered, "3sw/60fl") {
		t.Fatalf("render missing cells:\n%s", rendered)
	}
}

// TestSuiteParallelMatchesSequential is the parity contract: per-cell
// results from the concurrent pool equal sequential Scenario.Run.
func TestSuiteParallelMatchesSequential(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(tinyLBSpec())
	scales := []Scale{{Switches: 3, Flows: 60}, {Switches: 4, Flows: 80}}
	run := func(parallel int) *Matrix {
		m, err := (&Suite{Registry: reg, Scales: scales, Parallel: parallel}).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Err(); err != nil {
			t.Fatal(err)
		}
		return m
	}
	par, seq := run(4), run(1)
	for i := range par.Cells {
		a, b := &par.Cells[i], &seq.Cells[i]
		if a.Cell != b.Cell {
			t.Fatalf("cell order differs: %v vs %v", a.Cell, b.Cell)
		}
		if a.Outcome.Generated != b.Outcome.Generated || a.Outcome.Passed != b.Outcome.Passed {
			t.Fatalf("%v: %d/%d vs %d/%d", a.Cell,
				a.Outcome.Generated, a.Outcome.Passed, b.Outcome.Generated, b.Outcome.Passed)
		}
		va, vb := a.Verdicts(), b.Verdicts()
		if len(va) != len(vb) {
			t.Fatalf("%v: verdict counts differ", a.Cell)
		}
		for j := range va {
			if va[j] != vb[j] {
				t.Fatalf("%v: verdict %d differs", a.Cell, j)
			}
		}
	}
	// And the direct scenario run agrees with the suite cell.
	direct, err := tinyLBSpec().MustInstantiate(scales[0]).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cell := par.At("tiny-lb", scales[0])
	if direct.Generated != cell.Outcome.Generated || direct.Passed != cell.Outcome.Passed {
		t.Fatalf("suite cell %d/%d differs from direct run %d/%d",
			cell.Outcome.Generated, cell.Outcome.Passed, direct.Generated, direct.Passed)
	}
}

func TestSuiteUnknownScenarioFailsFast(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(tinyLBSpec())
	_, err := (&Suite{Registry: reg, Scenarios: []string{"nope"}}).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "tiny-lb") {
		t.Fatalf("unknown scenario error = %v (must list registered names)", err)
	}
}

func TestSuiteCellErrorDoesNotAbort(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(tinyLBSpec())
	broken := validSpec("broken")
	broken.Program = func(*topo.Fabric) (*ndlog.Program, []ndlog.Tuple, error) {
		return nil, nil, errors.New("boom")
	}
	reg.MustRegister(broken)
	m, err := (&Suite{Registry: reg, Scales: []Scale{{Switches: 3, Flows: 60}}, Parallel: 2}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Err() == nil || !strings.Contains(m.Err().Error(), "broken") {
		t.Fatalf("Matrix.Err() = %v, want the broken cell", m.Err())
	}
	good := m.At("tiny-lb", Scale{Switches: 3, Flows: 60})
	if good == nil || good.Err != nil || good.Outcome == nil {
		t.Fatal("healthy cell must complete despite the broken one")
	}
	if !strings.Contains(m.Render(), "ERROR") {
		t.Fatalf("render must mark the failed cell:\n%s", m.Render())
	}
}

func TestSuiteCancelled(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(tinyLBSpec())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := (&Suite{Registry: reg, Scales: []Scale{{Switches: 3, Flows: 60}}}).Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m == nil {
		t.Fatal("cancelled run must still return the partial matrix")
	}
}
