#!/usr/bin/env bash
# Daemon smoke: start metarepaird on a scratch dir, run Q1 through the
# HTTP API, and assert the suggested repair matches a one-shot CLI run
# of the same scenario at the same scale. Afterwards, scrape /metrics
# and assert the telemetry agrees with the work the smoke actually did:
# every required family present, one succeeded job on the books.
set -euo pipefail

SCALE_FLAGS=(-switches 19 -flows 300)
ADDR=127.0.0.1:18091
WORK=$(mktemp -d)
trap 'kill "$DPID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/metarepair" ./cmd/metarepair
go build -o "$WORK/metarepaird" ./cmd/metarepaird

# One-shot CLI baseline: the accepted suggestions ("*" rows).
"$WORK/metarepair" run -scenario Q1 "${SCALE_FLAGS[@]}" | tee "$WORK/cli.out"
grep '^ \*' "$WORK/cli.out" | sed 's/.*] //' | sort > "$WORK/cli.accepted"
[ -s "$WORK/cli.accepted" ] || { echo "CLI run accepted no repairs" >&2; exit 1; }

"$WORK/metarepaird" -addr "$ADDR" -data "$WORK/data" &
DPID=$!
for _ in $(seq 50); do
  curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "http://$ADDR/healthz" >/dev/null

JOB=$(curl -sf -X POST "http://$ADDR/v1/tenants/smoke/jobs" \
  -d '{"scenario":"Q1","switches":19,"flows":300}' |
  python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
echo "submitted $JOB"

for _ in $(seq 300); do
  STATE=$(curl -sf "http://$ADDR/v1/jobs/$JOB" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
  case "$STATE" in
    succeeded) break ;;
    failed|cancelled) echo "job ended $STATE" >&2
      curl -sf "http://$ADDR/v1/jobs/$JOB"; exit 1 ;;
  esac
  sleep 0.2
done
[ "$STATE" = succeeded ] || { echo "job stuck in $STATE" >&2; exit 1; }

curl -sf "http://$ADDR/v1/jobs/$JOB" |
  python3 -c '
import json, sys
rep = json.load(sys.stdin)["report"]
for r in rep["results"]:
    if r["accepted"]:
        print(r["desc"])
' | sort > "$WORK/api.accepted"

if ! diff -u "$WORK/cli.accepted" "$WORK/api.accepted"; then
  echo "daemon verdicts diverge from the one-shot CLI run" >&2
  exit 1
fi
echo "daemon smoke ok: $(wc -l < "$WORK/api.accepted") accepted repair(s) match the CLI"

# Observability: the scrape must carry every layer's families, and the
# job counters must match the one job this smoke ran.
curl -sf "http://$ADDR/metrics" > "$WORK/metrics.prom"
for fam in jobs_queue_depth jobs_total jobs_run_duration_seconds \
           jobs_queue_wait_seconds http_requests_total \
           http_request_duration_seconds session_span_duration_seconds \
           session_events_total ndlog_engine_ops_total \
           ndlog_delta_inserts_total ndlog_delta_retractions_total \
           ndlog_delta_recounted_tuples_total ndlog_delta_group_joins_total \
           tracestore_entries; do
  grep -q "^# TYPE $fam " "$WORK/metrics.prom" || {
    echo "/metrics is missing family $fam" >&2; exit 1; }
done
SUCCEEDED=$(grep '^jobs_total{state="succeeded"}' "$WORK/metrics.prom" |
  awk '{print $2}')
if [ "${SUCCEEDED:-0}" != 1 ]; then
  echo "jobs_total{state=\"succeeded\"} = ${SUCCEEDED:-absent}, want 1" >&2
  exit 1
fi
RUNS=$(grep '^jobs_run_duration_seconds_count{state="succeeded"}' \
  "$WORK/metrics.prom" | awk '{print $2}')
if [ "${RUNS:-0}" != 1 ]; then
  echo "run-duration histogram recorded ${RUNS:-0} runs, want 1" >&2
  exit 1
fi
echo "metrics smoke ok: all families present, job counters match"

# Graceful drain: SIGTERM must stop the daemon cleanly.
kill -TERM "$DPID"
wait "$DPID"
