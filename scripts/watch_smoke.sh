#!/usr/bin/env bash
# Watch smoke: the self-healing loop end to end through the daemon.
# Capture Q1 in fault-last order (healthy background traffic first,
# symptom packets after), boot metarepaird, ingest the healthy prefix,
# register a watch on the live trace, then inject the fault mid-stream
# — and require the watch to detect the symptom, auto-launch a repair
# job, and report a validated patch within the deadline. Afterwards,
# scrape /metrics and assert the sentinel_* families recorded the loop,
# then drain cleanly on SIGTERM.
set -euo pipefail

SCALE_FLAGS=(-switches 19 -flows 300)
ADDR=127.0.0.1:18092
REC=120 # fixed §5.4 binary record size
WORK=$(mktemp -d)
trap 'kill "$DPID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/metarepair" ./cmd/metarepair
go build -o "$WORK/metarepaird" ./cmd/metarepaird

# Fault-last capture: the recorder restamps ticks 1..N in replay order,
# so the printed boundary is also the record offset of the first
# symptomatic entry.
"$WORK/metarepair" capture -scenario Q1 "${SCALE_FLAGS[@]}" \
  -dir "$WORK/cap" -fault-last | tee "$WORK/capture.out"
HEALTHY=$(sed -n 's/^fault-last order: \([0-9]*\) healthy entries.*/\1/p' \
  "$WORK/capture.out")
[ -n "$HEALTHY" ] || { echo "capture printed no fault boundary" >&2; exit 1; }

# Segments are plain record concatenations; split the stream at the
# healthy/faulty boundary.
cat "$WORK/cap"/seg-*.bin > "$WORK/stream.bin"
head -c $((HEALTHY * REC)) "$WORK/stream.bin" > "$WORK/healthy.bin"
tail -c +$((HEALTHY * REC + 1)) "$WORK/stream.bin" > "$WORK/fault.bin"
[ -s "$WORK/fault.bin" ] || { echo "no symptomatic records captured" >&2; exit 1; }

"$WORK/metarepaird" -addr "$ADDR" -data "$WORK/data" &
DPID=$!
for _ in $(seq 50); do
  curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "http://$ADDR/healthz" >/dev/null

# The catalogue must list the scenario the watch is about to reference.
curl -sf "http://$ADDR/scenarios" | python3 -c '
import json, sys
names = [s["name"] for s in json.load(sys.stdin)["scenarios"]]
assert "Q1" in names, names
'

# Healthy background traffic flows first...
curl -sf -X POST --data-binary "@$WORK/healthy.bin" \
  "http://$ADDR/v1/tenants/smoke/traces/live?format=binary" >/dev/null

# ...then the watch goes live on the stream...
WATCH=$(curl -sf -X POST "http://$ADDR/v1/tenants/smoke/watches" \
  -d '{"scenario":"Q1","switches":19,"flows":300,"trace":"live","window":64,"label":"q1 self-heal"}' |
  python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
echo "watch $WATCH registered"

# ...and the fault arrives mid-stream.
curl -sf -X POST --data-binary "@$WORK/fault.bin" \
  "http://$ADDR/v1/tenants/smoke/traces/live?format=binary" >/dev/null

# The watch must detect the symptom and drive an auto-launched repair
# to a validated verdict within the deadline.
VALIDATED=0
for _ in $(seq 300); do
  VALIDATED=$(curl -sf "http://$ADDR/v1/watches/$WATCH" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["stats"]["validated"])')
  [ "$VALIDATED" -ge 1 ] && break
  sleep 0.2
done
if [ "$VALIDATED" -lt 1 ]; then
  echo "watch produced no validated repair" >&2
  curl -sf "http://$ADDR/v1/watches/$WATCH" >&2 || true
  exit 1
fi
curl -sf "http://$ADDR/v1/watches/$WATCH" | python3 -c '
import json, sys
st = json.load(sys.stdin)["stats"]
assert st["detections"] >= 1, st
assert st["launched"] >= 1, st
assert st["skipped_segments"] == 0, st
print("watch smoke ok: %d detection(s), %d validated repair(s)"
      % (st["detections"], st["validated"]))
'

# The auto-repair ran as a job with an accepted patch.
curl -sf "http://$ADDR/v1/tenants/smoke/jobs" | python3 -c '
import json, sys
jobs = json.load(sys.stdin)["jobs"]
auto = [j for j in jobs if j.get("label", "").startswith("auto-repair Q1")]
assert auto, jobs
done = [j for j in auto if j["state"] == "succeeded"]
assert done, auto
assert done[0]["report"]["accepted"] >= 1, done[0]["report"]
print("auto-repair job %s succeeded with an accepted patch" % done[0]["id"])
'

# Observability: the scrape must carry the sentinel families with the
# loop's work on the books, including the time-to-validated-repair SLO
# histogram.
curl -sf "http://$ADDR/metrics" > "$WORK/metrics.prom"
for fam in sentinel_entries_total sentinel_windows_total \
           sentinel_detections_total sentinel_suppressed_total \
           sentinel_repairs_total sentinel_time_to_validated_repair_seconds \
           sentinel_watches; do
  grep -q "^# TYPE $fam " "$WORK/metrics.prom" || {
    echo "/metrics is missing family $fam" >&2; exit 1; }
done
TTVR=$(grep '^sentinel_time_to_validated_repair_seconds_count' \
  "$WORK/metrics.prom" | awk '{print $2}')
if [ "${TTVR:-0}" -lt 1 ]; then
  echo "time-to-validated-repair histogram recorded ${TTVR:-0} repairs, want >=1" >&2
  exit 1
fi
VALIDATED_METRIC=$(grep '^sentinel_repairs_total{outcome="validated"}' \
  "$WORK/metrics.prom" | awk '{print $2}')
if [ "${VALIDATED_METRIC:-0}" -lt 1 ]; then
  echo "sentinel_repairs_total{outcome=\"validated\"} = ${VALIDATED_METRIC:-absent}, want >=1" >&2
  exit 1
fi
echo "metrics smoke ok: sentinel families present, $TTVR validated repair(s) timed"

# Graceful drain: SIGTERM must stop the watch loop and the daemon.
kill -TERM "$DPID"
wait "$DPID"
