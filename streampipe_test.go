package repro

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/meta"
	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/scenarios"
	"repro/internal/sdn"
	"repro/internal/trace"
	"repro/metarepair"
	"repro/scenario"
)

// streamScale keeps the equivalence runs quick; the properties under test
// are scale-invariant.
func streamScale() scenarios.Scale { return scenarios.Scale{Switches: 19, Flows: 300} }

// diagnoseHistory replays a scenario's workload through its buggy program
// and returns the provenance history the explorer searches.
func diagnoseHistory(t *testing.T, s *scenario.Scenario) *provenance.Recorder {
	t.Helper()
	eng := ndlog.MustNewEngine(s.Prog)
	rec := provenance.NewRecorder()
	eng.Listen(rec)
	net := s.BuildNet()
	ctl := sdn.NewNDlogController(eng)
	net.Ctrl = ctl
	for _, st := range s.State {
		ctl.InsertState(net, st)
	}
	if n := trace.Replay(net, s.Workload, 1); n != len(s.Workload) {
		t.Fatalf("%s: replayed %d of %d entries", s.Name, n, len(s.Workload))
	}
	return rec
}

// newExplorer builds an explorer over a scenario's history with a budget
// matching the scenario suite's cost bounds.
func newExplorer(s *scenario.Scenario, rec *provenance.Recorder) *metaprov.Explorer {
	ex := metaprov.NewExplorer(meta.NewModel(s.Prog), rec)
	ex.Cutoff = 3.4
	ex.MaxCandidates = 12
	return ex
}

// TestExploreStreamEquivalenceAllScenarios is the acceptance property of
// the concurrent frontier: for every one of the five §5.3 case studies
// and several worker counts, ExploreStream yields the exact candidate
// sequence of the sequential search — the cost-epoch emitter releases a
// candidate only when no cheaper partial tree remains anywhere.
func TestExploreStreamEquivalenceAllScenarios(t *testing.T) {
	for _, s := range scenarios.All(streamScale()) {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			rec := diagnoseHistory(t, s)
			seq := newExplorer(s, rec).Explore(s.Goal)
			if len(seq) == 0 {
				t.Fatalf("%s: sequential search found no candidates", s.Name)
			}
			for _, workers := range []int{2, runtime.GOMAXPROCS(0) + 1} {
				ex := newExplorer(s, rec)
				ex.Workers = workers
				cands, errc := ex.ExploreStream(context.Background(), s.Goal)
				var par []metaprov.Candidate
				for c := range cands {
					par = append(par, c)
				}
				if err := <-errc; err != nil {
					t.Fatalf("workers=%d: stream error: %v", workers, err)
				}
				if len(par) != len(seq) {
					t.Fatalf("workers=%d: %d candidates streamed, %d sequential", workers, len(par), len(seq))
				}
				for i := range seq {
					if seq[i].Signature() != par[i].Signature() || seq[i].Cost != par[i].Cost {
						t.Fatalf("workers=%d: candidate %d diverges:\n  sequential: [%.1f] %s\n  stream:     [%.1f] %s",
							workers, i, seq[i].Cost, seq[i].Describe(), par[i].Cost, par[i].Describe())
					}
				}
			}
		})
	}
}

// TestStreamingPipelineMatchesBarrier runs the full repair pipeline both
// ways on Q1 and demands identical candidates and verdicts: the streaming
// composition changes wall-clock shape, never results.
func TestStreamingPipelineMatchesBarrier(t *testing.T) {
	ctx := context.Background()
	runMode := func(mode metarepair.PipelineMode) *metarepair.Report {
		t.Helper()
		s := scenarios.Q1(streamScale())
		sess, _, err := s.Diagnose()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sess.Repair(ctx, s.Symptom(), s.Backtest(), metarepair.WithPipelineMode(mode))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	barrier := runMode(metarepair.PipelineBarrier)
	stream := runMode(metarepair.PipelineStreaming)

	if len(stream.Candidates) != len(barrier.Candidates) {
		t.Fatalf("candidates: streaming %d, barrier %d", len(stream.Candidates), len(barrier.Candidates))
	}
	if len(stream.Results) != len(barrier.Results) {
		t.Fatalf("results: streaming %d, barrier %d", len(stream.Results), len(barrier.Results))
	}
	for i := range barrier.Results {
		bs, ss := barrier.Results[i], stream.Results[i]
		if bs.Candidate.Signature() != ss.Candidate.Signature() {
			t.Fatalf("candidate %d differs: %s vs %s", i, bs.Candidate.Describe(), ss.Candidate.Describe())
		}
		if bs.Accepted != ss.Accepted || bs.Effective != ss.Effective || bs.KS != ss.KS {
			t.Fatalf("candidate %d verdict differs: accepted %v/%v effective %v/%v KS %v/%v",
				i, bs.Accepted, ss.Accepted, bs.Effective, ss.Effective, bs.KS, ss.KS)
		}
	}
	if stream.Steps != barrier.Steps {
		t.Fatalf("steps: streaming %d, barrier %d", stream.Steps, barrier.Steps)
	}
	if stream.Batches != barrier.Batches {
		t.Fatalf("batches: streaming %d, barrier %d", stream.Batches, barrier.Batches)
	}
}
