package repro

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/scenarios"
	"repro/internal/sdn"
	"repro/internal/trace"
	"repro/internal/tracestore"
	"repro/metarepair"
)

// TestCaptureListReplayScenario is the end-to-end acceptance path: a
// scenario workload is captured into a segmented on-disk store through
// the live capture hook, the store is listed, and backtesting streams
// the workload back out — with verdicts identical to the in-memory
// slice path.
func TestCaptureListReplayScenario(t *testing.T) {
	ctx := context.Background()
	s := scenarios.Q1(scenarios.Scale{Switches: 19, Flows: 300})
	sess, _, err := s.Diagnose()
	if err != nil {
		t.Fatal(err)
	}
	expl, err := sess.Explore(ctx, s.Symptom())
	if err != nil {
		t.Fatal(err)
	}
	if len(expl.Candidates) == 0 {
		t.Fatal("no candidates")
	}

	// Capture: replay the recorded traffic through a capture-hooked
	// network into the store.
	st, err := tracestore.Open(t.TempDir(), tracestore.Options{SegmentEntries: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	net := s.BuildNet()
	rec := tracestore.NewRecorder(st)
	net.Capture = rec
	injected := trace.Replay(net, s.Workload, 1)
	if injected != len(s.Workload) {
		t.Fatalf("injected %d of %d entries", injected, len(s.Workload))
	}
	if rec.Err() != nil {
		t.Fatal(rec.Err())
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	// List: the segment index must account for every captured packet.
	segs := st.Segments()
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}
	var total int64
	for _, si := range segs {
		total += si.Entries
	}
	if total != int64(injected) {
		t.Fatalf("segments account for %d entries, captured %d", total, injected)
	}

	// Replay: identical verdicts through the slice and store paths.
	bt := s.Backtest()
	sliceRun, err := sess.Evaluate(ctx, expl.Candidates, bt)
	if err != nil {
		t.Fatal(err)
	}
	sliceRep, err := sliceRun.Wait()
	if err != nil {
		t.Fatal(err)
	}
	storeBt := bt
	storeBt.Workload = nil
	storeBt.Source = st.Source()
	storeRun, err := sess.Evaluate(ctx, expl.Candidates, storeBt)
	if err != nil {
		t.Fatal(err)
	}
	storeRep, err := storeRun.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(storeRep.Results) != len(sliceRep.Results) || len(sliceRep.Results) == 0 {
		t.Fatalf("result counts: slice %d, store %d", len(sliceRep.Results), len(storeRep.Results))
	}
	for i := range sliceRep.Results {
		a, b := sliceRep.Results[i], storeRep.Results[i]
		if a.Accepted != b.Accepted || a.Effective != b.Effective || a.KS != b.KS || a.P != b.P {
			t.Fatalf("verdict %d diverged:\n slice %+v\n store %+v", i, a, b)
		}
	}
	if storeRep.Accepted == 0 {
		t.Fatal("store-backed backtest accepted nothing")
	}
}

// TestMillionEntryStreamingReplay captures a million-entry trace and
// streams it back without ever materializing the full []trace.Entry:
// heap growth across the replay stays orders of magnitude below the
// ~120 MB the slice would occupy.
func TestMillionEntryStreamingReplay(t *testing.T) {
	const entries = 1_000_000
	st, err := tracestore.Open(t.TempDir(), tracestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Append in small batches so the writer, not the test, owns memory.
	batch := make([]trace.Entry, 0, 4096)
	for i := 0; i < entries; i++ {
		batch = append(batch, trace.Entry{
			Time:    int64(i + 1),
			SrcHost: "h1",
			Pkt:     sdn.Packet{SrcIP: int64(i % 251), DstIP: 201, DstPort: 80, Proto: 6},
		})
		if len(batch) == cap(batch) {
			if err := st.Append(batch...); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if err := st.Append(batch...); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Entries; got != entries {
		t.Fatalf("stored %d entries", got)
	}
	if segs := len(st.Segments()); segs < 10 {
		t.Fatalf("expected many segments, got %d", segs)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	var count int64
	var lastTime int64
	err = st.Source().Scan(func(e trace.Entry) error {
		count++
		if e.Time < lastTime {
			t.Fatalf("entry out of order at %d", count)
		}
		lastTime = e.Time
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != entries {
		t.Fatalf("streamed %d of %d entries", count, entries)
	}

	runtime.GC()
	runtime.ReadMemStats(&after)
	sliceBytes := int64(entries) * trace.RecordSize
	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if growth > sliceBytes/4 {
		t.Fatalf("replay retained %d bytes of heap — not streaming (full slice would be %d)",
			growth, sliceBytes)
	}
}

// TestWithTraceStoreSessionOption pins the session-level wiring: a
// session whose store option is set backtests without any workload in
// the Backtest evidence at all.
func TestWithTraceStoreSessionOption(t *testing.T) {
	ctx := context.Background()
	s := scenarios.Q1(scenarios.Scale{Switches: 19, Flows: 300})
	st, err := tracestore.Open(t.TempDir(), tracestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Append(s.Workload...); err != nil {
		t.Fatal(err)
	}
	sess, _, err := s.Diagnose(metarepair.WithTraceStore(st))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Repair(ctx, s.Symptom(), metarepair.Backtest{
		BuildNet:  s.BuildNet,
		State:     s.State,
		Effective: s.Effective,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted == 0 {
		t.Fatal("session-store backtest accepted nothing")
	}
}
