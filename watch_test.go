package repro

import (
	"context"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/scenarios"
	"repro/internal/sentinel"
	"repro/internal/trace"
	"repro/internal/tracestore"
	"repro/metarepair"
)

// TestWatchSelfHealsLiveStream is the self-healing acceptance path: a
// watcher tails a live trace store while a capture streams in — healthy
// background traffic first, then the symptomatic flows mid-stream. The
// online detector flags the offending window while appends are still
// arriving, the watcher launches a first-accepted repair scoped to that
// window, and the backtest validates a patch — all without the test
// ever invoking the offline pipeline.
func TestWatchSelfHealsLiveStream(t *testing.T) {
	const window = 64

	s := scenarios.Q1(scenarios.Scale{Switches: 19, Flows: 300})
	trigger := sentinel.TriggerFromGoal(s.Goal)
	if trigger == nil {
		t.Fatal("Q1 goal does not derive a trigger")
	}

	// Rebuild the capture fault-last: background flows stream first,
	// symptom-relevant ones after, each restamped onto a single
	// monotonic clock — the shape `metarepair capture -fault-last`
	// produces for exactly this drill.
	stream := append([]trace.Entry(nil), s.Workload...)
	sort.SliceStable(stream, func(i, j int) bool { return stream[i].Time < stream[j].Time })
	var healthy, faulty []trace.Entry
	for _, e := range stream {
		if trigger(e) {
			faulty = append(faulty, e)
		} else {
			healthy = append(healthy, e)
		}
	}
	if len(faulty) <= window+1 {
		t.Fatalf("only %d symptom entries — cannot close a %d-tick window mid-stream", len(faulty), window)
	}
	ordered := append(append([]trace.Entry(nil), healthy...), faulty...)
	for i := range ordered {
		ordered[i].Time = int64(i + 1)
	}

	st, err := tracestore.Open(t.TempDir(), tracestore.Options{SegmentEntries: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Collect watch.* lifecycle events; validated repairs ring the bell.
	var mu sync.Mutex
	var events []metarepair.Event
	validated := make(chan metarepair.Event, 4)
	sink := metarepair.SinkFunc(func(e metarepair.Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
		if e.Kind == "watch.repair.done" && e.Accepted {
			select {
			case validated <- e:
			default:
			}
		}
	})

	w, err := metarepair.NewWatcher(metarepair.WatchConfig{
		Scenario:  s.Name,
		Store:     st,
		Program:   s.Prog,
		Symptom:   s.Symptom(),
		BuildNet:  s.BuildNet,
		State:     s.State,
		Effective: s.Effective,
		Window:    window,
		Lookback:  int64(len(ordered)), // replay evidence back to the stream's start
		Poll:      5 * time.Millisecond,
		Sink:      sink,
		Options:   s.Options,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- w.Run(ctx) }()

	// Stream the capture in while the watcher follows.
	for i := 0; i < len(ordered); i += 128 {
		end := i + 128
		if end > len(ordered) {
			end = len(ordered)
		}
		if err := st.Append(ordered[i:end]...); err != nil {
			t.Fatal(err)
		}
	}

	select {
	case ev := <-validated:
		if ev.Desc == "" {
			t.Error("validated repair event carries no patch description")
		}
		if ev.Elapsed <= 0 {
			t.Errorf("validated repair event reports elapsed %v ms", ev.Elapsed)
		}
	case <-ctx.Done():
		t.Fatalf("no validated repair before deadline; stats %+v", w.Stats())
	}

	// Let any stragglers (suppression overlaps) settle, then wind down.
	deadline := time.Now().Add(time.Minute)
	for {
		stt := w.Stats()
		if stt.Launched == stt.Validated+stt.Unvalidated+stt.Failed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("repairs still outstanding: %+v", stt)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-runDone; err != nil {
		t.Fatalf("watcher run: %v", err)
	}

	stt := w.Stats()
	if stt.Entries != int64(len(ordered)) {
		t.Errorf("watcher saw %d of %d entries", stt.Entries, len(ordered))
	}
	if stt.Detections == 0 || stt.Launched == 0 || stt.Validated == 0 {
		t.Errorf("stats show no validated detection: %+v", stt)
	}
	if stt.SkippedSegments != 0 {
		t.Errorf("live tail skipped %d segments without retention", stt.SkippedSegments)
	}

	mu.Lock()
	defer mu.Unlock()
	kinds := map[string]int{}
	for _, e := range events {
		kinds[e.Kind]++
		// Inline repair sessions share the sink, so pipeline events
		// (span.*, suggestion, ...) interleave unlabeled; every watch.*
		// lifecycle event must carry the watch label.
		if len(e.Kind) > 6 && e.Kind[:6] == "watch." && e.Watch != s.Name {
			t.Fatalf("event %s mislabeled: watch %q", e.Kind, e.Watch)
		}
	}
	for _, k := range []string{"watch.start", "watch.detect", "watch.repair.start", "watch.repair.done", "watch.stop"} {
		if kinds[k] == 0 {
			t.Errorf("no %s event (saw %v)", k, kinds)
		}
	}
	// The detection must sit in the symptomatic suffix of the stream.
	faultStart := int64(len(healthy))
	for _, e := range events {
		if e.Kind == "watch.detect" && e.To <= faultStart {
			t.Errorf("detection window [%d,%d] predates the fault at %d", e.From, e.To, faultStart)
		}
	}
}
